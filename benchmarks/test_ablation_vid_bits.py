"""Ablation: VID width m (section 4.6's trade-off).

Small VID spaces force frequent resets, stalling the pipeline until the
maximum VID commits; wide VIDs cost tag area.  The paper settles on m = 6.
"""

from conftest import run_once

from repro.core import MachineConfig
from repro.power import McPatModel
from repro.runtime import run_ps_dswp
from repro.workloads import LinkedListWorkload


def _cycles_for_bits(bits: int) -> tuple:
    workload = LinkedListWorkload(nodes=60, work_cycles=200)
    result = run_ps_dswp(workload, MachineConfig(vid_bits=bits))
    assert workload.observed_result(result.system) == \
        workload.expected_result(result.system)
    return result.cycles, result.system.vid_space.resets


def test_vid_width_tradeoff(benchmark):
    sweep = {}
    for bits in (2, 3, 4, 6, 8):
        sweep[bits] = _cycles_for_bits(bits)
    run_once(benchmark, _cycles_for_bits, 6)
    print("\nm   cycles     resets   +area (mm^2)")
    for bits, (cycles, resets) in sweep.items():
        extra = McPatModel(MachineConfig(vid_bits=bits),
                           hmtx_extensions=True).area().hmtx_extensions
        print(f"{bits}   {cycles:>8,}   {resets:>5}   {extra:.2f}")
    # Narrow VIDs stall the pipeline on resets...
    assert sweep[2][1] > sweep[6][1]
    assert sweep[2][0] > sweep[6][0]
    # ...while m=6 already gets within a whisker of m=8.
    assert sweep[6][0] < 1.1 * sweep[8][0]
    # Tag area grows with m.
    assert McPatModel(MachineConfig(vid_bits=8), True).total_area() > \
        McPatModel(MachineConfig(vid_bits=2), True).total_area()
