"""Benchmark: regenerate Figure 2 (SMTX minimal vs substantial R/W sets)."""

from conftest import run_once

from repro.experiments import format_fig2, run_fig2


def test_fig2_smtx_validation_cost(benchmark, runner):
    result = run_once(benchmark, run_fig2, runner=runner)
    print("\n" + format_fig2(result))
    # The motivating claim: substantial validation turns SMTX's modest
    # speedups into slowdowns, for every benchmark.
    for row in result.rows.values():
        assert row.substantial_whole_program < row.minimal_whole_program
    assert result.geomean_substantial < 1.0
    assert result.geomean_minimal > 1.2
