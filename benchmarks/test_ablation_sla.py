"""Ablation: the SLA mechanism of section 5.1 on vs off.

Without SLAs, branch-mispredicted (squashed) loads mark cache lines and
logically-earlier stores trigger *false* misspeculations.  Measures the
abort counts and the slowdown on 186.crafty (the suite's worst mispredict
rate, 5.59%).
"""

from conftest import run_once

from repro.runtime import run_workload
from repro.workloads import executor_factory_for, make_benchmark


def _run(sla_enabled: bool):
    workload = make_benchmark("186.crafty")
    result = run_workload(workload, sla_enabled=sla_enabled,
                          executor_factory=executor_factory_for(workload))
    return workload, result


def test_sla_ablation(benchmark):
    workload, with_sla = _run(sla_enabled=True)
    _, without_sla = run_once(benchmark, _run, sla_enabled=False)
    print(f"\nSLA on : {with_sla.cycles:,} cycles, "
          f"{with_sla.system.stats.aborted} aborts, "
          f"{with_sla.system.stats.false_aborts_avoided} avoided")
    print(f"SLA off: {without_sla.cycles:,} cycles, "
          f"{without_sla.system.stats.aborted} aborts "
          f"({without_sla.system.stats.false_aborts_triggered} false)")
    # With SLAs: zero misspeculation (section 6.3).
    assert with_sla.system.stats.aborted == 0
    assert with_sla.system.stats.false_aborts_avoided > 0
    # Without: false aborts fire repeatedly until the runtime gives up on
    # parallel execution, and performance collapses.
    assert without_sla.system.stats.false_aborts_triggered > 0
    assert without_sla.extra["degraded_serial"]
    assert without_sla.cycles > 1.4 * with_sla.cycles


def test_no_sla_forces_li_serial(benchmark):
    """130.li avoids 22.5 aborts per TX (Table 1); without SLAs its false
    aborts recur deterministically and the runtime must degrade to serial
    execution to make progress — parallelism is lost entirely."""

    def attempt():
        workload = make_benchmark("130.li", 0.5)
        result = run_workload(workload, sla_enabled=False,
                              executor_factory=executor_factory_for(workload))
        return workload, result

    workload, result = run_once(benchmark, attempt)
    with_sla = run_workload(make_benchmark("130.li", 0.5), sla_enabled=True,
                            executor_factory=executor_factory_for(
                                make_benchmark("130.li", 0.5)))
    print(f"\n130.li without SLAs: degraded={result.extra['degraded_serial']}"
          f" cycles={result.cycles:,} (SLA on: {with_sla.cycles:,})")
    assert result.extra["degraded_serial"]
    assert result.cycles > 1.3 * with_sla.cycles
    assert workload.observed_result(result.system) == \
        workload.expected_result(result.system)
