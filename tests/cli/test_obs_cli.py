"""CLI tests for ``python -m repro obs``."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import main as obs_main
from repro.obs.export import validate_trace


class TestObsCli:
    def test_text_report_reconciles(self, capsys):
        rc = obs_main(["contended-list", "--scale", "0.25",
                       "--policy", "backoff"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cycle attribution" in out
        assert "reconciliation vs SystemStats: exact" in out
        assert "hottest lines by conflict count:" in out

    def test_timeline_artifact_is_valid(self, capsys, tmp_path):
        out_file = tmp_path / "timeline.json"
        rc = obs_main(["contended-list", "--scale", "0.25",
                       "--policy", "backoff",
                       "--timeline", str(out_file), "--gantt"])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"wrote {out_file}" in out
        assert "gantt:" in out
        data = json.loads(out_file.read_text())
        counts = validate_trace(data)
        assert counts["b"] == counts["e"] > 0

    def test_json_report_schema(self, capsys):
        rc = obs_main(["contended-list", "--scale", "0.25",
                       "--policy", "backoff", "--format", "json"])
        out = capsys.readouterr().out
        assert rc == 0
        report = json.loads(out)
        assert report["schema"] == "hmtx-obs-report/1"
        assert report["correct"] is True
        assert report["reconcile"]["ok"] is True
        assert report["digest"]["schema"] == "hmtx-obs-digest/1"
        assert report["digest"]["identity_ok"] is True
        checks = report["reconcile"]["checks"]
        assert checks["commits"]["observed"] == checks["commits"]["stats"]
        assert report["metrics"]["counters"]["tx_commits_total"] \
            == checks["commits"]["stats"]

    def test_other_backends_reconcile(self, capsys):
        for system in ("smtx-minimal", "oracle"):
            rc = obs_main(["contended-list", "--scale", "0.25",
                           "--backend", system, "--format", "json"])
            report = json.loads(capsys.readouterr().out)
            assert rc == 0, system
            assert report["reconcile"]["ok"] is True, system

    def test_metrics_dump(self, capsys):
        rc = obs_main(["052.alvinn", "--scale", "0.1", "--metrics"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "tx_commits_total" in out
        assert "coherence_loads_total" in out

    def test_overhead_check_passes_generous_limit(self, capsys):
        # A generous bound keeps this stable on loaded CI machines while
        # still catching pathological instrumentation regressions.
        rc = obs_main(["contended-list", "--scale", "0.25",
                       "--policy", "backoff", "--overhead-check",
                       "--repeat", "2", "--overhead-limit", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "overhead-check" in out and "OK" in out

    def test_unknown_workload_errors(self):
        with pytest.raises(KeyError):
            obs_main(["no-such-workload"])

    def test_module_dispatch(self, capsys):
        from repro.__main__ import main as repro_main
        rc = repro_main(["obs", "contended-list", "--scale", "0.25",
                         "--policy", "backoff", "--format", "json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["reconcile"]["ok"]


class TestOverheadJson:
    def test_overhead_check_json_carries_ratio_and_verdict(self, capsys):
        rc = obs_main(["contended-list", "--scale", "0.25",
                       "--policy", "backoff", "--overhead-check",
                       "--repeat", "1", "--overhead-limit", "50",
                       "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert report["schema"] == "hmtx-obs-overhead/1"
        assert report["workload"] == "contended-list"
        assert report["slowdown"] > 0
        assert report["limit"] == 50.0
        assert report["ok"] is True
        assert report["instrumented_ops_per_sec"] > 0


class TestRegressionObservatoryCli:
    def test_history_roundtrip_and_zero_self_diff(self, capsys, tmp_path):
        store = str(tmp_path / "hist")
        for _ in range(2):
            rc = obs_main(["contended-list", "--scale", "0.25",
                           "--history", store])
            assert rc == 0
        capsys.readouterr()
        rc = obs_main(["history", "--store", store])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 generation(s)" in out
        rc = obs_main(["diff", "HEAD~1", "HEAD", "--store", store,
                       "--check-zero"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ZERO DELTA" in out

    def test_diff_json_artifact_written(self, capsys, tmp_path):
        store = str(tmp_path / "hist")
        obs_main(["contended-list", "--scale", "0.25",
                  "--history", store])
        capsys.readouterr()
        output = tmp_path / "diff.json"
        rc = obs_main(["diff", "HEAD", "HEAD", "--store", store,
                       "--format", "json", "--output", str(output)])
        printed = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert printed["schema"] == "hmtx-obs-diff/1"
        assert printed["zero"] is True
        assert json.loads(output.read_text()) == printed

    def test_diff_bad_ref_exits_2(self, capsys, tmp_path):
        rc = obs_main(["diff", "HEAD~1", "HEAD",
                       "--store", str(tmp_path / "none")])
        assert rc == 2
        assert "obs diff:" in capsys.readouterr().err

    def test_history_export_bundle(self, capsys, tmp_path):
        store = str(tmp_path / "hist")
        obs_main(["contended-list", "--scale", "0.25",
                  "--history", store])
        capsys.readouterr()
        out_path = tmp_path / "bundle.json"
        rc = obs_main(["history", "--store", store,
                       "--export", str(out_path)])
        assert rc == 0
        bundle = json.loads(out_path.read_text())
        assert bundle["schema"] == "hmtx-obs-digests/1"
        assert bundle["entries"][0]["workload"] == "contended-list"

    def test_whatif_quick_smoke(self, capsys, tmp_path):
        rc = obs_main(["whatif", "--quick", "--output",
                       str(tmp_path / "w.json")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "reset_scrub" in out
        report = json.loads((tmp_path / "w.json").read_text())
        assert report["schema"] == "hmtx-obs-whatif/1"
        assert [c["preset"] for c in report["combos"]] == ["2s8c"]
