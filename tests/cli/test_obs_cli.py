"""CLI tests for ``python -m repro obs``."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import main as obs_main
from repro.obs.export import validate_trace


class TestObsCli:
    def test_text_report_reconciles(self, capsys):
        rc = obs_main(["contended-list", "--scale", "0.25",
                       "--policy", "backoff"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cycle attribution" in out
        assert "reconciliation vs SystemStats: exact" in out
        assert "hottest lines by conflict count:" in out

    def test_timeline_artifact_is_valid(self, capsys, tmp_path):
        out_file = tmp_path / "timeline.json"
        rc = obs_main(["contended-list", "--scale", "0.25",
                       "--policy", "backoff",
                       "--timeline", str(out_file), "--gantt"])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"wrote {out_file}" in out
        assert "gantt:" in out
        data = json.loads(out_file.read_text())
        counts = validate_trace(data)
        assert counts["b"] == counts["e"] > 0

    def test_json_report_schema(self, capsys):
        rc = obs_main(["contended-list", "--scale", "0.25",
                       "--policy", "backoff", "--format", "json"])
        out = capsys.readouterr().out
        assert rc == 0
        report = json.loads(out)
        assert report["schema"] == "hmtx-obs-report/1"
        assert report["correct"] is True
        assert report["reconcile"]["ok"] is True
        assert report["digest"]["schema"] == "hmtx-obs-digest/1"
        assert report["digest"]["identity_ok"] is True
        checks = report["reconcile"]["checks"]
        assert checks["commits"]["observed"] == checks["commits"]["stats"]
        assert report["metrics"]["counters"]["tx_commits_total"] \
            == checks["commits"]["stats"]

    def test_other_backends_reconcile(self, capsys):
        for system in ("smtx-minimal", "oracle"):
            rc = obs_main(["contended-list", "--scale", "0.25",
                           "--backend", system, "--format", "json"])
            report = json.loads(capsys.readouterr().out)
            assert rc == 0, system
            assert report["reconcile"]["ok"] is True, system

    def test_metrics_dump(self, capsys):
        rc = obs_main(["052.alvinn", "--scale", "0.1", "--metrics"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "tx_commits_total" in out
        assert "coherence_loads_total" in out

    def test_overhead_check_passes_generous_limit(self, capsys):
        # A generous bound keeps this stable on loaded CI machines while
        # still catching pathological instrumentation regressions.
        rc = obs_main(["contended-list", "--scale", "0.25",
                       "--policy", "backoff", "--overhead-check",
                       "--repeat", "2", "--overhead-limit", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "overhead-check" in out and "OK" in out

    def test_unknown_workload_errors(self):
        with pytest.raises(KeyError):
            obs_main(["no-such-workload"])

    def test_module_dispatch(self, capsys):
        from repro.__main__ import main as repro_main
        rc = repro_main(["obs", "contended-list", "--scale", "0.25",
                         "--policy", "backoff", "--format", "json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["reconcile"]["ok"]
