"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "130.li" in out

    def test_fig5_artifact(self, capsys):
        assert main(["fig5"]) == 0
        assert "S-M(2,2)" in capsys.readouterr().out

    def test_fig1_artifact(self, capsys):
        assert main(["fig1"]) == 0
        assert "PS-DSWP" in capsys.readouterr().out

    def test_run_benchmark(self, capsys):
        assert main(["run", "ispell", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "matches sequential semantics" in out

    def test_run_sequential(self, capsys):
        assert main(["run", "ispell", "--system", "sequential",
                     "--scale", "0.3"]) == 0
        assert "Sequential" in capsys.readouterr().out

    def test_run_smtx(self, capsys):
        assert main(["run", "456.hmmer", "--system", "smtx-minimal",
                     "--scale", "0.3"]) == 0
        assert "SMTX" in capsys.readouterr().out

    def test_run_with_trace(self, capsys):
        assert main(["run", "ispell", "--scale", "0.3", "--trace"]) == 0
        assert "event counts" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "999.nope"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
