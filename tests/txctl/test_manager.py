"""Contention manager: escalation ladder, fallback, and recovery edges.

Unit tests drive the manager with synthetic aborts; the runtime tests run
real workloads through the paradigm executors to cover the serial
fallback path end to end, including the seed runtime's livelock scenario
(capacity aborts that survive serialisation) and aborts interleaved with
VID-reset stalls.
"""

import pytest

from repro.core import MachineConfig
from repro.errors import LivelockError, MisspeculationError
from repro.runtime import run_workload
from repro.txctl import (
    Action,
    AbortCause,
    ContentionManager,
    FallbackLock,
    ImmediateRetry,
    SerialFallback,
)
from repro.workloads import CapacityHogWorkload, HighContentionListWorkload


def _abort(cause=AbortCause.CONFLICT, vid=1):
    return MisspeculationError("synthetic", vid=vid, cause=cause)


class TestEscalationLadder:
    def test_first_abort_retries(self):
        manager = ContentionManager()
        decision = manager.on_abort(_abort(), committed=0)
        assert decision.action is Action.RETRY

    def test_serializes_after_two_no_progress_aborts(self):
        """The seed runtime's serialize-after-2 behaviour is preserved as
        one rung of the ladder."""
        manager = ContentionManager()
        manager.on_abort(_abort(), committed=0)
        decision = manager.on_abort(_abort(), committed=0)
        assert decision.action is Action.SERIALIZE
        assert manager.serialized

    def test_progress_resets_the_no_progress_count(self):
        manager = ContentionManager()
        manager.on_abort(_abort(), committed=1)
        decision = manager.on_abort(_abort(), committed=2)
        assert decision.action is Action.RETRY
        assert manager.no_progress == 0

    def test_serialization_is_sticky(self):
        manager = ContentionManager()
        manager.on_abort(_abort(), committed=0)
        manager.on_abort(_abort(), committed=0)
        decision = manager.on_abort(_abort(), committed=5)
        assert decision.action is Action.SERIALIZE

    def test_no_progress_while_serialized_falls_back(self):
        manager = ContentionManager()
        decisions = [manager.on_abort(_abort(), committed=0)
                     for _ in range(4)]
        assert decisions[-1].action is Action.FALLBACK
        assert manager.fallback_taken

    def test_repeated_capacity_abort_while_serialized_falls_back(self):
        """A non-transient cause recurring after serialisation cannot
        succeed speculatively; the manager must not burn the rest of the
        recovery budget on it."""
        manager = ContentionManager()
        manager.on_abort(_abort(AbortCause.CAPACITY_OVERFLOW), committed=0)
        manager.on_abort(_abort(AbortCause.CAPACITY_OVERFLOW), committed=0)
        decision = manager.on_abort(_abort(AbortCause.CAPACITY_OVERFLOW),
                                    committed=0)
        assert decision.action is Action.FALLBACK

    def test_recovery_budget_exhaustion_falls_back(self):
        manager = ContentionManager(max_recoveries=3,
                                    serialize_after_no_progress=100,
                                    fallback_after_no_progress=100,
                                    policy=ImmediateRetry())
        for _ in range(3):
            committed = manager.recoveries + 1  # always progresses
            manager.on_abort(_abort(), committed=committed)
        decision = manager.on_abort(_abort(), committed=10)
        assert decision.action is Action.FALLBACK

    def test_disabled_fallback_raises_typed_livelock_error(self):
        manager = ContentionManager(fallback=None)
        with pytest.raises(LivelockError) as info:
            for _ in range(10):
                manager.on_abort(_abort(vid=7), committed=0)
        assert info.value.vid == 7
        assert info.value.recoveries == 4
        assert "VID 7" in str(info.value)

    def test_stats_account_decisions(self):
        manager = ContentionManager()
        for _ in range(4):
            manager.on_abort(_abort(), committed=0)
        stats = manager.stats
        assert stats.aborts == 4
        assert stats.retries == 1
        assert stats.serialized_recoveries == 2
        assert stats.fallback_entries == 1

    def test_bind_resets_per_run_state(self):
        class FakeStats:
            committed = 0

        class FakeSystem:
            def __init__(self):
                from repro.core.stats import SystemStats
                self.stats = SystemStats()

        manager = ContentionManager()
        for _ in range(4):
            manager.on_abort(_abort(), committed=0)
        system = FakeSystem()
        manager.bind(system)
        assert manager.recoveries == 0
        assert not manager.serialized
        assert not manager.fallback_taken
        assert manager.stats is system.stats.contention


class TestFallbackLock:
    def test_acquire_release_cycle(self):
        lock = FallbackLock()
        lock.acquire(3)
        assert lock.held and lock.holder == 3
        lock.release(3)
        assert not lock.held
        assert lock.acquisitions == 1

    def test_double_acquire_rejected(self):
        lock = FallbackLock()
        lock.acquire(0)
        with pytest.raises(RuntimeError):
            lock.acquire(1)

    def test_foreign_release_rejected(self):
        lock = FallbackLock()
        lock.acquire(0)
        with pytest.raises(RuntimeError):
            lock.release(1)

    def test_manager_reports_lock_state(self):
        fallback = SerialFallback()
        manager = ContentionManager(fallback=fallback)
        assert not manager.fallback_lock_held
        fallback.lock.acquire(0)
        assert manager.fallback_lock_held

    def test_managers_do_not_share_locks(self):
        a, b = ContentionManager(), ContentionManager()
        a.fallback.lock.acquire(0)
        assert not b.fallback_lock_held


class TestRuntimeRecovery:
    def test_capacity_livelock_completes_via_serial_fallback(self):
        """The acceptance scenario: transactions whose write sets overflow
        a tiny hierarchy livelocked the seed runtime; the fallback now
        finishes them non-speculatively with the result intact."""
        workload = CapacityHogWorkload(iterations=2)
        result = run_workload(workload,
                              config=CapacityHogWorkload.tiny_config())
        assert result.extra["serial_fallback"]
        contention = result.system.stats.contention
        assert contention.cause_count(AbortCause.CAPACITY_OVERFLOW) > 0
        assert contention.fallback_iterations == workload.iterations
        assert contention.fallback_entries == 1
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_fallback_resumes_after_committed_iterations(self):
        """Iterations committed speculatively before the fallback must not
        be re-executed: early small iterations commit, a later huge write
        set forces the fallback, which resumes at ``stats.committed``."""

        class MixedHog(CapacityHogWorkload):
            def _iteration_lines(self, i):
                lines = super()._iteration_lines(i)
                return lines if i >= 2 else lines[:2]  # first 2 iters tiny

        workload = MixedHog(iterations=4)
        result = run_workload(workload,
                              config=CapacityHogWorkload.tiny_config())
        contention = result.system.stats.contention
        assert result.extra["serial_fallback"]
        # The fallback picked up exactly the iterations that had not
        # committed speculatively when it took over.
        assert result.committed > 0
        assert contention.fallback_iterations == \
            workload.iterations - result.committed
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_disabled_fallback_surfaces_livelock_error(self):
        workload = CapacityHogWorkload(iterations=2)
        manager = ContentionManager(fallback=None)
        with pytest.raises(LivelockError) as info:
            run_workload(workload,
                         config=CapacityHogWorkload.tiny_config(),
                         manager=manager)
        assert info.value.vid > 0
        assert info.value.recoveries > 0

    def test_abort_during_vid_reset_stall(self):
        """vid_bits=2 leaves 3 usable VIDs, so the runtime constantly
        stalls for VID resets; conflict aborts raised around those stalls
        must still recover to a correct result."""
        workload = HighContentionListWorkload(nodes=16, rmw_per_iteration=2)
        result = run_workload(workload,
                              config=MachineConfig(num_cores=4, vid_bits=2))
        assert result.system.stats.vid_resets > 0
        assert result.committed == workload.iterations
        assert workload.counter_value(result.system) == \
            workload.expected_counter()
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_conflicts_cured_without_fallback(self):
        """Pure conflict contention must stay speculative: the ladder's
        serialisation rung suffices and the fallback is never entered."""
        workload = HighContentionListWorkload(nodes=24, rmw_per_iteration=2)
        result = run_workload(workload)
        assert not result.extra["serial_fallback"]
        assert result.committed == workload.iterations
        assert workload.counter_value(result.system) == \
            workload.expected_counter()
