"""Abort taxonomy: classification and end-to-end cause threading.

The five causes must each be stamped at its source and surface both on
the raised :class:`~repro.errors.MisspeculationError` and in the system's
``stats.contention`` breakdown.
"""

import pytest

from repro.core import HMTXSystem, MachineConfig
from repro.errors import MisspeculationError, SpeculativeOverflowError
from repro.txctl import AbortCause, classify, event_from_exception

ADDR = 0x4000


@pytest.fixture
def system():
    sys = HMTXSystem(MachineConfig(num_cores=4))
    for tid in range(4):
        sys.thread(tid, core=tid)
    return sys


class TestTaxonomy:
    def test_capacity_is_the_only_non_transient_cause(self):
        for cause in AbortCause:
            assert cause.transient == (cause is not AbortCause.CAPACITY_OVERFLOW)

    def test_classify_prefers_stamped_cause(self):
        exc = MisspeculationError("x", cause=AbortCause.INTERRUPT)
        assert classify(exc) is AbortCause.INTERRUPT

    def test_classify_falls_back_on_exception_type(self):
        # Unstamped construction is deprecated (the constructor now
        # default-classifies); classify() must agree with that default.
        with pytest.warns(DeprecationWarning):
            overflow = SpeculativeOverflowError("evicted")
        with pytest.warns(DeprecationWarning):
            legacy = MisspeculationError("legacy")
        assert classify(overflow) is AbortCause.CAPACITY_OVERFLOW
        assert classify(legacy) is AbortCause.CONFLICT

    def test_event_from_exception_carries_context(self):
        exc = MisspeculationError("boom", vid=3, addr=0x1234,
                                  cause=AbortCause.CONFLICT)
        event = event_from_exception(exc, committed=7)
        assert event.vid == 3
        assert event.addr == 0x1234
        assert event.cause is AbortCause.CONFLICT
        assert event.committed == 7


class TestEndToEndCauses:
    def test_conflict(self, system):
        v1, v2 = system.allocate_vid(), system.allocate_vid()
        system.begin_mtx(0, v2)
        system.load(0, ADDR)
        system.begin_mtx(1, v1)
        with pytest.raises(MisspeculationError) as info:
            system.store(1, ADDR, 1)
        assert classify(info.value) is AbortCause.CONFLICT
        assert system.stats.contention.by_cause == {"conflict": 1}

    def test_capacity_overflow(self):
        sys = HMTXSystem(MachineConfig(num_cores=2, l1_size=1024, l1_assoc=2,
                                       l2_size=4096, l2_assoc=4))
        sys.thread(0, core=0)
        sys.begin_mtx(0, sys.allocate_vid())
        with pytest.raises(MisspeculationError) as info:
            for i in range(400):
                sys.store(0, 0x40_0000 + i * 64, i)
        assert classify(info.value) is AbortCause.CAPACITY_OVERFLOW
        assert sys.stats.contention.cause_count(
            AbortCause.CAPACITY_OVERFLOW) == 1

    def test_wrong_path(self):
        sys = HMTXSystem(MachineConfig(num_cores=2), sla_enabled=False)
        sys.thread(0, core=0)
        sys.thread(1, core=1)
        v1, v2 = sys.allocate_vid(), sys.allocate_vid()
        sys.begin_mtx(1, v2)
        sys.wrong_path_load(1, ADDR)  # marks the line (no SLAs)
        sys.begin_mtx(0, v1)
        with pytest.raises(MisspeculationError) as info:
            sys.store(0, ADDR, 1)
        assert classify(info.value) is AbortCause.WRONG_PATH
        assert sys.stats.false_aborts_triggered == 1
        assert sys.stats.contention.by_cause == {"wrong-path": 1}

    def test_interrupt(self, system):
        system.begin_mtx(0, system.allocate_vid())
        system.store(0, ADDR, 9)
        with pytest.raises(MisspeculationError) as info:
            system.kernel_store(1, ADDR, 1)
        assert classify(info.value) is AbortCause.INTERRUPT
        assert system.stats.contention.by_cause == {"interrupt": 1}

    def test_explicit(self, system):
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        with pytest.raises(MisspeculationError) as info:
            system.abort_mtx(0, vid)
        assert classify(info.value) is AbortCause.EXPLICIT
        assert system.stats.contention.by_cause == {"explicit": 1}

    def test_load_path_capacity_abort_flushes_state(self):
        """A capacity abort raised on the *load* path must flush the
        speculative state exactly like the store path does."""
        sys = HMTXSystem(MachineConfig(num_cores=2, l1_size=1024, l1_assoc=2,
                                       l2_size=4096, l2_assoc=4))
        sys.thread(0, core=0)
        sys.begin_mtx(0, sys.allocate_vid())
        with pytest.raises(MisspeculationError):
            for i in range(400):
                sys.store(0, 0x40_0000 + i * 64, i)
                sys.load(0, 0x50_0000 + i * 64)
        assert not sys.active_vids
        assert sys.contexts[0].vid == 0
