"""Livelock detector: windowed ratios and monotone escalation."""

import pytest

from repro.txctl import EscalationLevel, LivelockDetector


class TestEscalation:
    def test_quiet_below_min_events(self):
        detector = LivelockDetector(min_events=4)
        for _ in range(3):
            assert detector.observe(False) is EscalationLevel.NORMAL

    def test_progress_keeps_level_normal(self):
        detector = LivelockDetector(window=8, min_events=4)
        for _ in range(8):
            assert detector.observe(True) is EscalationLevel.NORMAL

    def test_full_window_of_stalls_reaches_fallback(self):
        detector = LivelockDetector(window=8, min_events=4)
        level = EscalationLevel.NORMAL
        for _ in range(8):
            level = detector.observe(False)
        assert level is EscalationLevel.FALLBACK

    def test_half_stalled_window_serializes(self):
        detector = LivelockDetector(window=8, min_events=4,
                                    fallback_ratio=0.9)
        for progressed in [True, False] * 4:
            detector.observe(progressed)
        assert detector.level is EscalationLevel.SERIALIZE

    def test_monotone_despite_later_progress(self):
        detector = LivelockDetector(window=4, min_events=2)
        for _ in range(4):
            detector.observe(False)
        assert detector.level is EscalationLevel.FALLBACK
        for _ in range(10):
            detector.observe(True)
        assert detector.level is EscalationLevel.FALLBACK

    def test_reset_restores_pristine_state(self):
        detector = LivelockDetector(window=4, min_events=2)
        for _ in range(4):
            detector.observe(False)
        detector.reset()
        assert detector.level is EscalationLevel.NORMAL
        assert detector.events_seen() == 0
        assert detector.no_progress_ratio == 0.0

    def test_ratio_counts_window_only(self):
        detector = LivelockDetector(window=4, min_events=2)
        for _ in range(4):
            detector.observe(False)
        for _ in range(4):
            detector.observe(True)
        assert detector.no_progress_ratio == 0.0

    def test_misordered_ratios_rejected(self):
        with pytest.raises(ValueError):
            LivelockDetector(backoff_ratio=0.9, serialize_ratio=0.5)
