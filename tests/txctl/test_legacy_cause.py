"""Deprecation of unstamped misspeculation raises (cause=None).

Legacy construction must keep working — default-classified exactly as
:func:`repro.txctl.causes.classify` would have — but now warns, and the
lint rule RL001 bans new in-repo sites.  These tests pin the bridge
behaviour so removing it later is a deliberate act.
"""

import warnings

import pytest

from repro.errors import MisspeculationError, SpeculativeOverflowError
from repro.txctl import AbortCause, classify


class TestLegacyCausePath:
    def test_unstamped_misspeculation_warns_and_defaults_to_conflict(self):
        with pytest.warns(DeprecationWarning, match="without cause="):
            exc = MisspeculationError("legacy site", vid=3)
        assert exc.cause is AbortCause.CONFLICT

    def test_unstamped_overflow_defaults_to_capacity(self):
        with pytest.warns(DeprecationWarning):
            exc = SpeculativeOverflowError("evicted", vid=2)
        assert exc.cause is AbortCause.CAPACITY_OVERFLOW

    def test_stamped_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            exc = MisspeculationError("stamped", vid=1,
                                      cause=AbortCause.WRONG_PATH)
        assert exc.cause is AbortCause.WRONG_PATH

    def test_classify_agrees_with_the_default_stamp(self):
        """The bridge must classify exactly like the old lazy fallback."""
        with pytest.warns(DeprecationWarning):
            legacy = MisspeculationError("legacy")
        assert classify(legacy) is legacy.cause is AbortCause.CONFLICT

    def test_default_stamp_survives_reraise_and_context(self):
        with pytest.warns(DeprecationWarning):
            try:
                raise MisspeculationError("legacy", vid=5, addr=0x40)
            except MisspeculationError as err:
                caught = err
        assert caught.cause is AbortCause.CONFLICT
        assert (caught.vid, caught.addr) == (5, 0x40)
