"""Retry/backoff policies: determinism, cause sensitivity, composition."""

import pytest

from repro.txctl import (
    Action,
    AbortCause,
    AbortEvent,
    CapacityAware,
    ExponentialBackoff,
    ImmediateRetry,
    LemmingAvoidance,
    POLICIES,
    PolicyContext,
    deterministic_jitter,
    make_policy,
)


def _event(cause=AbortCause.CONFLICT, vid=1):
    return AbortEvent(vid=vid, cause=cause)


class TestJitter:
    def test_deterministic(self):
        assert deterministic_jitter(3, 2, 64) == deterministic_jitter(3, 2, 64)

    def test_bounded_by_spread(self):
        for vid in range(8):
            for attempt in range(1, 6):
                assert 0 <= deterministic_jitter(vid, attempt, 32) < 32

    def test_zero_spread_is_zero(self):
        assert deterministic_jitter(5, 1, 0) == 0

    def test_distinct_vids_desynchronise(self):
        delays = {deterministic_jitter(vid, 1, 4096) for vid in range(8)}
        assert len(delays) > 1


class TestImmediateRetry:
    def test_always_retries_with_no_delay(self):
        decision = ImmediateRetry().decide(_event(), PolicyContext())
        assert decision.action is Action.RETRY
        assert decision.delay == 0


class TestExponentialBackoff:
    def test_delay_doubles_per_attempt(self):
        policy = ExponentialBackoff(base=32, factor=2, jitter=0)
        delays = [policy.backoff_cycles(vid=1, attempts=a)
                  for a in range(1, 5)]
        assert delays == [32, 64, 128, 256]

    def test_ceiling_clamps(self):
        policy = ExponentialBackoff(base=32, ceiling=100, jitter=0)
        assert policy.backoff_cycles(vid=1, attempts=10) == 100

    def test_huge_attempt_counts_do_not_overflow(self):
        policy = ExponentialBackoff(jitter=0)
        assert policy.backoff_cycles(vid=1, attempts=10_000) == 4096

    def test_two_instances_agree(self):
        a = ExponentialBackoff().decide(
            _event(vid=5), PolicyContext(vid_attempts=3))
        b = ExponentialBackoff().decide(
            _event(vid=5), PolicyContext(vid_attempts=3))
        assert a.delay == b.delay


class TestCapacityAware:
    def test_first_capacity_abort_retries(self):
        policy = CapacityAware()
        decision = policy.decide(_event(AbortCause.CAPACITY_OVERFLOW),
                                 PolicyContext(cause_attempts=1))
        assert decision.action is Action.RETRY

    def test_repeat_capacity_abort_goes_to_fallback(self):
        policy = CapacityAware()
        decision = policy.decide(_event(AbortCause.CAPACITY_OVERFLOW),
                                 PolicyContext(cause_attempts=2))
        assert decision.action is Action.FALLBACK

    def test_conflicts_delegate_to_inner(self):
        policy = CapacityAware(inner=ImmediateRetry())
        decision = policy.decide(_event(AbortCause.CONFLICT),
                                 PolicyContext(cause_attempts=5))
        assert decision.action is Action.RETRY
        assert decision.delay == 0


class TestLemmingAvoidance:
    def test_delays_retry_while_lock_held(self):
        policy = LemmingAvoidance(lock_hold_estimate=2048)
        decision = policy.decide(
            _event(), PolicyContext(fallback_lock_held=True))
        assert decision.action is Action.RETRY
        assert decision.delay >= 2048

    def test_delegates_when_lock_free(self):
        policy = LemmingAvoidance(inner=ImmediateRetry())
        decision = policy.decide(
            _event(), PolicyContext(fallback_lock_held=False))
        assert decision.delay == 0


class TestRegistry:
    def test_every_registered_policy_instantiates(self):
        for name in POLICIES:
            policy = make_policy(name)
            decision = policy.decide(_event(), PolicyContext())
            assert isinstance(decision.action, Action)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_policy("optimism")
