"""Topology equivalence and golden pinning (PR-8 satellite S3).

Two contracts guard the topology layer:

1. **One socket is not a mode.**  A 1-socket :class:`TopologySpec` must
   be *simulation-identical* to the flat machine — same cycles, same
   stats, same cache contents — for any shape and placement policy.  The
   hypothesis property below drives randomly-shaped 1-socket machines
   against their flat twins and compares full run snapshots.

2. **The 2-socket machine is pinned.**  A seeded PS-DSWP run on a
   2-socket × 4-core directory machine is snapshotted against a checked-in
   golden, so NUMA-latency or slice-routing changes cannot drift silently.
   Regenerate (only after an intentional modelled-behaviour change) with::

       PYTHONPATH=src python -m pytest \
           tests/integration/test_topology_golden.py --regen-goldens
"""

from __future__ import annotations

import json
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MachineConfig
from repro.runtime.paradigms import run_ps_dswp
from repro.topology import TopologySpec
from repro.workloads.linkedlist import LinkedListWorkload

from .test_fastpath_golden import snapshot

GOLDEN_PATH = pathlib.Path(__file__).parent.parent / "goldens" \
    / "topology_2socket.json"


def _run(machine: MachineConfig, nodes: int) -> dict:
    workload = LinkedListWorkload(nodes=nodes, work_cycles=60)
    result = run_ps_dswp(workload, config=machine)
    return snapshot(result, workload)


# ----------------------------------------------------------------------
# Property: any 1-socket spec is the flat machine
# ----------------------------------------------------------------------

@settings(max_examples=12, deadline=None)
@given(cores=st.integers(min_value=2, max_value=6),
       nodes=st.integers(min_value=4, max_value=20),
       placement=st.sampled_from(["pack", "spread"]),
       coherence=st.sampled_from(["snoopy", "directory"]))
def test_one_socket_spec_is_simulation_identical_to_flat(
        cores, nodes, placement, coherence):
    spec = TopologySpec(sockets=1, cores_per_socket=cores)
    flat = MachineConfig(num_cores=cores, coherence=coherence,
                         placement=placement)
    one_socket = MachineConfig(num_cores=cores, coherence=coherence,
                               placement=placement, topology=spec)
    assert _run(flat, nodes) == _run(one_socket, nodes)


def test_flat_preset_machine_equals_default_machine():
    assert _run(MachineConfig.for_topology("table2"), 16) \
        == _run(MachineConfig(), 16)


# ----------------------------------------------------------------------
# Seeded 2-socket golden
# ----------------------------------------------------------------------

def _run_two_socket() -> dict:
    machine = MachineConfig.for_topology(
        TopologySpec(sockets=2, cores_per_socket=4))
    return _run(machine, 24)


@pytest.fixture(scope="module")
def golden(request):
    if request.config.getoption("--regen-goldens"):
        produced = _run_two_socket()
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(produced, indent=2,
                                          sort_keys=True) + "\n")
        return produced
    if not GOLDEN_PATH.exists():
        pytest.fail(f"{GOLDEN_PATH} missing; run with --regen-goldens")
    return json.loads(GOLDEN_PATH.read_text())


def test_two_socket_run_matches_golden(golden):
    produced = json.loads(json.dumps(_run_two_socket()))
    assert produced.keys() == golden.keys()
    for section in golden:
        assert produced[section] == golden[section], (
            f"2-socket golden: section {section!r} diverged")


def test_two_socket_run_is_deterministic():
    assert _run_two_socket() == _run_two_socket()
