"""Golden equivalence suite for the hot-path fast-path layer.

The epoch/filter/index machinery of :mod:`repro.coherence` is *purely* an
implementation optimisation: every makespan, every ``HierarchyStats`` /
``CacheStats`` counter, every comparator energy count and every workload
result must be bit-identical to the unoptimised seed simulator.  This test
pins that contract: the checked-in goldens under ``tests/goldens/`` were
generated from the seed (pre-fast-path) simulator, and every run since must
reproduce them exactly.

Regenerate (only after an *intentional* modelled-behaviour change) with::

    PYTHONPATH=src python -m pytest tests/integration/test_fastpath_golden.py \
        --regen-goldens
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest

from repro.runtime.paradigms import run_ps_dswp, run_workload
from repro.txctl import ContentionManager, make_policy
from repro.workloads import make_benchmark
from repro.workloads.contended import (
    CapacityHogWorkload,
    HighContentionListWorkload,
)

GOLDEN_PATH = pathlib.Path(__file__).parent.parent / "goldens" \
    / "fastpath_equivalence.json"

#: The Figure 8 slice: one DOALL benchmark plus two PS-DSWP benchmarks at
#: the default scale, all under HMTX with SLAs on.
FIG8_SLICE = ("052.alvinn", "130.li", "ispell")


def _cache_snapshot(cache) -> dict:
    snap = dataclasses.asdict(cache.stats)
    snap["occupancy"] = cache.occupancy()
    snap["comparator_fast"] = cache.comparator.fast_comparisons
    snap["comparator_cascaded"] = cache.comparator.cascaded_comparisons
    return snap


def snapshot(result, workload) -> dict:
    """Everything observable about a run that must stay bit-identical."""
    system = result.system
    stats = system.stats
    hierarchy = system.hierarchy
    transactions = stats.transactions
    return {
        "cycles": result.cycles,
        "recoveries": result.recoveries,
        "ops_executed": result.run.ops_executed,
        "correct": (workload.observed_result(system)
                    == workload.expected_result(system)),
        "system": {
            "committed": stats.committed,
            "aborted": stats.aborted,
            "explicit_aborts": stats.explicit_aborts,
            "spec_loads": stats.spec_loads,
            "spec_stores": stats.spec_stores,
            "slas_sent": stats.slas_sent,
            "wrong_path_loads": stats.wrong_path_loads,
            "false_aborts_avoided": stats.false_aborts_avoided,
            "false_aborts_triggered": stats.false_aborts_triggered,
            "vid_resets": stats.vid_resets,
            "transactions": len(transactions),
            "read_set_bytes": sum(t.read_set_bytes for t in transactions),
            "write_set_bytes": sum(t.write_set_bytes for t in transactions),
            "combined_set_bytes": sum(t.combined_set_bytes
                                      for t in transactions),
            "spec_accesses": sum(t.spec_accesses for t in transactions),
            "tx_slas_sent": sum(t.slas_sent for t in transactions),
        },
        "contention": {
            "by_cause": {str(k): v
                         for k, v in sorted(
                             stats.contention.by_cause.items(),
                             key=lambda kv: str(kv[0]))},
            "backoff_cycles": stats.contention.backoff_cycles,
            "fallback_iterations": stats.contention.fallback_iterations,
        },
        "hierarchy": dataclasses.asdict(hierarchy.stats),
        "speculative_footprint_bytes":
            hierarchy.speculative_footprint_bytes(),
        "caches": {cache.name: _cache_snapshot(cache)
                   for cache in hierarchy._all_caches()},
    }


def _run_fig8_slice(name: str) -> dict:
    workload = make_benchmark(name, 1.0)
    result = run_workload(workload)
    return snapshot(result, workload)


def _run_contended_list() -> dict:
    workload = HighContentionListWorkload(nodes=24, rmw_per_iteration=2)
    manager = ContentionManager(policy=make_policy("backoff"))
    result = run_ps_dswp(workload, manager=manager)
    return snapshot(result, workload)


def _run_capacity_hog() -> dict:
    workload = CapacityHogWorkload(iterations=4)
    manager = ContentionManager(policy=make_policy("capacity-aware"))
    result = run_ps_dswp(workload, config=CapacityHogWorkload.tiny_config(),
                         manager=manager)
    return snapshot(result, workload)


SCENARIOS = {
    **{f"fig8:{name}": (lambda n=name: _run_fig8_slice(n))
       for name in FIG8_SLICE},
    "contended-list": _run_contended_list,
    "capacity-hog": _run_capacity_hog,
}


@pytest.fixture(scope="module")
def goldens(request):
    regen = request.config.getoption("--regen-goldens")
    if regen:
        produced = {name: run() for name, run in SCENARIOS.items()}
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(produced, indent=2,
                                          sort_keys=True) + "\n")
        return produced
    if not GOLDEN_PATH.exists():
        pytest.fail(f"{GOLDEN_PATH} missing; run with --regen-goldens")
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_fastpath_matches_seed_golden(goldens, scenario):
    produced = SCENARIOS[scenario]()
    expected = goldens[scenario]
    # Compare section by section for a readable diff on failure.
    assert produced.keys() == expected.keys()
    for section in expected:
        assert produced[section] == expected[section], (
            f"{scenario}: section {section!r} diverged from the seed "
            f"simulator")
