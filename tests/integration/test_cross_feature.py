"""Cross-feature integration tests: features composed, as users would.

Each test exercises combinations the unit suites cover separately:
benchmark models x interrupts, directory coherence x benchmark suite,
unbounded sets x recovery, compiled loops x interrupts, VID resets under
long runs, and thread migration mid-transaction during pipeline execution.
"""

import pytest

from repro.core import HMTXSystem, MachineConfig
from repro.cpu import InterruptInjector
from repro.runtime.paradigms import run_ps_dswp, run_sequential, run_workload
from repro.workloads import (
    LinkedListWorkload,
    executor_factory_for,
    make_benchmark,
)

FAST = 0.3


def _verify(workload, result) -> bool:
    return workload.observed_result(result.system) == \
        workload.expected_result(result.system)


class TestInterruptsAcrossSuite:
    """Section 5.2 at suite scale: interrupts never cause misspeculation."""

    @pytest.mark.parametrize("name", ["ispell", "456.hmmer", "130.li"])
    def test_benchmark_survives_interrupts(self, name):
        workload = make_benchmark(name, FAST)
        result = run_workload(
            workload,
            interrupts=InterruptInjector(period=3000, handler_accesses=6),
            executor_factory=executor_factory_for(workload))
        assert result.system.stats.aborted == 0
        assert _verify(workload, result)

    def test_interrupt_frequency_costs_time_not_correctness(self):
        quiet = run_ps_dswp(LinkedListWorkload(nodes=24))
        workload = LinkedListWorkload(nodes=24)
        stormy = run_ps_dswp(
            workload, interrupts=InterruptInjector(period=500,
                                                   handler_accesses=12))
        assert stormy.cycles > quiet.cycles
        assert _verify(workload, stormy)


class TestDirectoryAcrossSuite:
    @pytest.mark.parametrize("name", ["ispell", "164.gzip", "052.alvinn"])
    def test_benchmark_on_directory_machine(self, name):
        workload = make_benchmark(name, FAST)
        result = run_workload(
            workload, MachineConfig(num_cores=4, coherence="directory"),
            executor_factory=executor_factory_for(workload))
        assert result.system.stats.aborted == 0
        assert _verify(workload, result)
        result.system.hierarchy.check_directory_invariant()

    def test_directory_with_interrupts(self):
        workload = LinkedListWorkload(nodes=24)
        result = run_ps_dswp(
            workload, MachineConfig(num_cores=4, coherence="directory"),
            interrupts=InterruptInjector(period=2000))
        assert _verify(workload, result)


class TestUnboundedSetsAcrossSuite:
    def test_bzip2_on_small_caches(self):
        """The big-set benchmark on caches far too small for it."""
        from repro.workloads import Bzip2Workload
        config = MachineConfig(num_cores=4, l1_size=2 * 1024, l1_assoc=4,
                               l2_size=8 * 1024, l2_assoc=8,
                               unbounded_sets=True)
        workload = Bzip2Workload(iterations=4, block_lines=32)
        result = run_workload(workload, config,
                              executor_factory=executor_factory_for(workload))
        assert result.system.stats.aborted == 0
        assert result.system.hierarchy.stats.spec_overflow_spills > 0
        assert _verify(workload, result)

    def test_unbounded_sets_with_directory(self):
        config = MachineConfig(num_cores=4, coherence="directory",
                               l1_size=4 * 1024, l1_assoc=4,
                               l2_size=16 * 1024, l2_assoc=8,
                               unbounded_sets=True)
        workload = LinkedListWorkload(nodes=24)
        result = run_ps_dswp(workload, config)
        assert _verify(workload, result)


class TestVidResetsUnderLongRuns:
    def test_many_epochs(self):
        """More iterations than 3 full VID epochs, tiny VID space."""
        config = MachineConfig(num_cores=4, vid_bits=3)   # 7 VIDs/epoch
        workload = LinkedListWorkload(nodes=50)
        result = run_ps_dswp(workload, config)
        assert result.system.vid_space.resets >= 6
        assert result.system.stats.aborted == 0
        assert _verify(workload, result)

    def test_resets_with_interrupts_and_directory(self):
        config = MachineConfig(num_cores=4, vid_bits=3, coherence="directory")
        workload = LinkedListWorkload(nodes=30)
        result = run_ps_dswp(workload, config,
                             interrupts=InterruptInjector(period=4000))
        assert result.system.vid_space.resets >= 3
        assert _verify(workload, result)


class TestMigrationDuringPipeline:
    def test_thread_migrates_mid_transaction(self):
        """Section 5.2: a speculative thread moves cores mid-MTX; its
        versions are found via the VID wherever they are cached."""
        system = HMTXSystem(MachineConfig(num_cores=4))
        system.thread(0, core=0)
        vids = []
        for step in range(6):
            vid = system.allocate_vid()
            vids.append(vid)
            system.begin_mtx(0, vid)
            system.store(0, 0x7000 + step * 64, 100 + step)
            system.migrate(0, core=(step + 1) % 4)
            # Re-read after migrating: must see its own uncommitted store.
            assert system.load(0, 0x7000 + step * 64).value == 100 + step
        for vid in vids:
            system.begin_mtx(0, vid)
            system.commit_mtx(0, vid)
        for step in range(6):
            assert system.load(0, 0x7000 + step * 64).value == 100 + step


class TestCompiledLoopsComposed:
    def test_compiled_loop_with_interrupts_and_small_vids(self):
        from repro.compiler import Loop, compile_loop
        loop = Loop("composed", iterations=20)
        loop.scalar("cursor", init=3)
        loop.array("out")
        loop.statement("advance", reads=("cursor",), writes=("cursor",),
                       compute=lambda i, e: {"cursor": (e["cursor"] * 7 + 1) % 997},
                       work=20)
        loop.statement("emit", reads=("cursor",), writes=("out",),
                       compute=lambda i, e: {"out": e["cursor"] ^ i},
                       work=120, branches=3)
        workload = compile_loop(loop)
        config = MachineConfig(num_cores=4, vid_bits=3)
        result = run_ps_dswp(workload, config,
                             interrupts=InterruptInjector(period=2500))
        assert _verify(workload, result)
        assert result.system.vid_space.resets >= 1
