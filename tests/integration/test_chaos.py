"""Failure injection: random aborts at arbitrary execution points.

A chaos executor flips a deterministic pseudo-random coin before memory
operations and triggers a full transactional abort — modelling asynchronous
failure sources (watchdogs, software-detected misspeculation, conservative
OS events) striking at the worst possible moments.  Whatever the injection
pattern, recovery must reproduce sequential semantics exactly.
"""

import pytest

from repro.core import HMTXSystem
from repro.cpu.core_model import CoreExecutor
from repro.cpu.isa import Load, Store
from repro.errors import MisspeculationError
from repro.txctl import AbortCause
from repro.runtime.paradigms import run_doall, run_ps_dswp
from repro.workloads import LinkedListWorkload, Lcg
from repro.workloads.alvinn import AlvinnWorkload


class ChaosExecutor(CoreExecutor):
    """Randomly aborts all speculation before some memory operations."""

    def __init__(self, system, rate_denominator: int, seed: int) -> None:
        super().__init__(system)
        self._rng = Lcg(seed)
        self._denominator = rate_denominator
        self.injected = 0

    def execute(self, tid, op, now=0):
        if isinstance(op, (Load, Store)) \
                and self.system.contexts[tid].vid > 0 \
                and self.system.active_vids \
                and self._rng.next(self._denominator) == 0:
            self.injected += 1
            self.system._abort(explicit=True)
            raise MisspeculationError("chaos: injected abort",
                                      cause=AbortCause.INTERRUPT)
        return super().execute(tid, op, now)


def chaos_factory(rate_denominator: int, seed: int):
    holder = {}

    def factory(system: HMTXSystem) -> ChaosExecutor:
        executor = ChaosExecutor(system, rate_denominator, seed)
        holder["executor"] = executor
        return executor

    factory.holder = holder
    return factory


class TestChaos:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_ps_dswp_survives_random_aborts(self, seed):
        factory = chaos_factory(rate_denominator=150, seed=seed)
        workload = LinkedListWorkload(nodes=24)
        result = run_ps_dswp(workload, executor_factory=factory)
        executor = factory.holder["executor"]
        assert executor.injected > 0, "chaos never fired; lower the rate"
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)
        assert result.recoveries >= executor.injected

    @pytest.mark.parametrize("seed", [3, 11])
    def test_doall_survives_random_aborts(self, seed):
        factory = chaos_factory(rate_denominator=500, seed=seed)
        workload = AlvinnWorkload(iterations=10)
        result = run_doall(workload, executor_factory=factory)
        assert factory.holder["executor"].injected > 0
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_heavy_chaos_degrades_but_completes(self):
        """Very frequent injection forces the serial fallback; the result
        must still be exact."""
        factory = chaos_factory(rate_denominator=60, seed=5)
        workload = LinkedListWorkload(nodes=16)
        result = run_ps_dswp(workload, executor_factory=factory)
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_every_iteration_commits_exactly_once(self):
        factory = chaos_factory(rate_denominator=300, seed=9)
        workload = LinkedListWorkload(nodes=20)
        result = run_ps_dswp(workload, executor_factory=factory)
        assert result.system.stats.committed == workload.iterations
