"""Tests for the CACTI/McPAT-style area, power, and energy model."""

import pytest

from repro.core import MachineConfig
from repro.power import (
    McPatModel,
    RunProfile,
    TechnologyNode,
    cache_arrays,
    profile_from_result,
    sram_array,
)
from repro.runtime.paradigms import run_ps_dswp, run_sequential
from repro.workloads.linkedlist import LinkedListWorkload


class TestSramModel:
    def test_zero_bits(self):
        est = sram_array(0, fast=True)
        assert est.area_mm2 == 0.0

    def test_area_scales_with_bits(self):
        small = sram_array(1 << 20, fast=False)
        large = sram_array(1 << 24, fast=False)
        assert large.area_mm2 == pytest.approx(16 * small.area_mm2)

    def test_fast_arrays_are_larger(self):
        bits = 1 << 20
        assert sram_array(bits, fast=True).area_mm2 \
            > sram_array(bits, fast=False).area_mm2

    def test_energy_grows_sublinearly(self):
        small = sram_array(1 << 20, fast=True)
        large = sram_array(1 << 26, fast=True)
        assert large.read_energy_nj < 64 * small.read_energy_nj

    def test_estimates_add(self):
        a = sram_array(1 << 20, fast=True)
        total = a + a
        assert total.bits == 2 * a.bits
        assert total.area_mm2 == pytest.approx(2 * a.area_mm2)


class TestCacheArrays:
    def test_extension_bits_add_area(self):
        base = cache_arrays(64 * 1024, 8, 64, fast=True)
        ext = cache_arrays(64 * 1024, 8, 64, fast=True, extra_state_bits=12)
        assert ext.area_mm2 > base.area_mm2

    def test_vid_bits_area_is_small_fraction(self):
        """Section 6.4: the 12 extra bits are a few percent of the cache."""
        base = cache_arrays(32 * 1024 * 1024, 32, 64, fast=False)
        ext = cache_arrays(32 * 1024 * 1024, 32, 64, fast=False,
                           extra_state_bits=12)
        delta = ext.area_mm2 - base.area_mm2
        assert delta / base.area_mm2 < 0.10


class TestMcPatCalibration:
    """The Table 3 anchor points."""

    def test_commodity_area(self):
        assert McPatModel().total_area() == pytest.approx(107.1, abs=0.5)

    def test_hmtx_area(self):
        model = McPatModel(hmtx_extensions=True)
        assert model.total_area() == pytest.approx(111.1, abs=0.5)

    def test_extension_delta_about_4mm2(self):
        delta = McPatModel(hmtx_extensions=True).total_area() \
            - McPatModel().total_area()
        assert delta == pytest.approx(4.0, abs=0.5)

    def test_commodity_leakage(self):
        assert McPatModel().leakage() == pytest.approx(5.515, abs=0.05)

    def test_hmtx_leakage(self):
        assert McPatModel(hmtx_extensions=True).leakage() \
            == pytest.approx(5.607, abs=0.05)

    def test_extension_area_reported_separately(self):
        breakdown = McPatModel(hmtx_extensions=True).area()
        assert breakdown.hmtx_extensions > 3.0
        assert breakdown.cores > 0 and breakdown.l2_cache > 0

    def test_vid_width_drives_extension_area(self):
        narrow = McPatModel(MachineConfig(vid_bits=2), hmtx_extensions=True)
        wide = McPatModel(MachineConfig(vid_bits=10), hmtx_extensions=True)
        assert wide.total_area() > narrow.total_area()


class TestDynamicPower:
    def test_one_busy_core_sequential_ballpark(self):
        """Table 3: sequential geomean dynamic ~3.6 W."""
        model = McPatModel()
        profile = RunProfile(cycles=1_000_000, busy_fractions={0: 1.0},
                             l1_accesses=200_000, l2_accesses=10_000)
        assert 3.0 < model.dynamic_power(profile) < 4.2

    def test_four_busy_cores_parallel_ballpark(self):
        """Table 3: SMTX/HMTX geomean dynamic ~13.7-14.5 W."""
        model = McPatModel(hmtx_extensions=True)
        profile = RunProfile(cycles=1_000_000,
                             busy_fractions={i: 1.0 for i in range(4)},
                             l1_accesses=800_000, l2_accesses=40_000)
        assert 12.0 < model.dynamic_power(profile) < 16.0

    def test_hmtx_hardware_adds_small_overhead(self):
        """Running the same software on HMTX hardware costs ~1% more —
        the paper's 'low impact of HMTX extensions' result."""
        profile = RunProfile(cycles=1_000_000, busy_fractions={0: 1.0},
                             l1_accesses=100_000)
        plain = McPatModel().dynamic_power(profile)
        extended = McPatModel(hmtx_extensions=True).dynamic_power(profile)
        assert plain < extended < plain * 1.03

    def test_zero_cycles(self):
        assert McPatModel().dynamic_power(RunProfile(cycles=0)) == 0.0

    def test_energy_combines_leakage_and_dynamic(self):
        model = McPatModel()
        profile = RunProfile(cycles=2_000_000, busy_fractions={0: 1.0})
        report = model.report("x", profile)
        assert report.energy_j == pytest.approx(
            (report.leakage_w + report.dynamic_w) * report.seconds)


class TestProfileExtraction:
    def test_sequential_profile_one_core(self):
        result = run_sequential(LinkedListWorkload(nodes=12))
        profile = profile_from_result(result)
        assert sum(profile.busy_fractions.values()) == pytest.approx(1.0)
        assert profile.l1_accesses > 0

    def test_parallel_profile_many_cores(self):
        result = run_ps_dswp(LinkedListWorkload(nodes=12))
        profile = profile_from_result(result, hmtx_active=True)
        assert len(profile.busy_fractions) == 4
        assert profile.hmtx_active

    def test_commit_process_adds_busy_core(self):
        result = run_sequential(LinkedListWorkload(nodes=12))
        with_commit = profile_from_result(result, commit_process=True)
        plain = profile_from_result(result)
        assert len(with_commit.busy_fractions) == len(plain.busy_fractions) + 1


class TestEnergyStory:
    def test_hmtx_energy_beats_smtx(self):
        """Table 3's headline: HMTX finishes sooner, so despite higher
        power it uses less energy than SMTX."""
        model = McPatModel(hmtx_extensions=True)
        hmtx = model.report("hmtx", RunProfile(
            cycles=500_000, busy_fractions={i: 1.0 for i in range(4)}))
        smtx = model.report("smtx", RunProfile(
            cycles=900_000, busy_fractions={i: 1.0 for i in range(4)}))
        assert hmtx.energy_j < smtx.energy_j
