"""Backend conformance suite: every registered backend honours TMBackend.

``runtime_checkable`` protocols only verify method *presence*, so this
suite holds each backend to the full contract the paradigm executors
rely on:

* every name in ``PROTOCOL_METHODS`` exists with the same parameter
  names and defaults as the protocol (annotations are free to differ —
  HMTX types ``init_mtx``'s handler as ``Callable``, SMTX as ``Any``);
* every name in ``PROTOCOL_ATTRIBUTES`` exists after construction, with
  ``stats`` a real :class:`SystemStats` (same field set everywhere);
* the behavioural core — begin/store/commit updates ``last_committed``
  and buffers output until commit; ``abort_mtx`` raises
  :class:`MisspeculationError` stamped ``AbortCause.EXPLICIT`` and lands
  in the txctl taxonomy — is identical across backends;
* every backend actually runs a workload end-to-end through the
  paradigm executors (``run_workload(backend=...)``) and preserves
  sequential semantics.
"""

import dataclasses
import inspect

import pytest

from repro.backends import (
    PROTOCOL_ATTRIBUTES,
    PROTOCOL_METHODS,
    TMBackend,
    backend_names,
    get_backend,
)
from repro.core.config import MachineConfig
from repro.core.stats import SystemStats
from repro.errors import MisspeculationError
from repro.runtime.paradigms import run_workload
from repro.smtx.system import SMTXSystem
from repro.txctl.causes import AbortCause
from repro.workloads import make_benchmark

BACKENDS = sorted(backend_names())

ADDR = 0x1000


def fresh(name):
    return get_backend(name)(config=MachineConfig())


@pytest.fixture(params=BACKENDS)
def backend(request):
    return fresh(request.param)


class TestRegistry:
    def test_known_backends_registered(self):
        assert {"hmtx", "smtx", "oracle"} <= set(BACKENDS)

    def test_unknown_backend_is_loud(self):
        with pytest.raises(KeyError, match="hmtx"):
            get_backend("tsx")

    def test_factories_accept_config(self, backend):
        assert backend.config.line_size == MachineConfig().line_size


class TestSurface:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, TMBackend)

    def test_attributes_present(self, backend):
        for attr in PROTOCOL_ATTRIBUTES:
            assert hasattr(backend, attr), attr

    def test_method_signatures_match_protocol(self, backend):
        """Same parameter names and defaults as the protocol stubs.

        Annotations are excluded on purpose: the contract is structural
        (an executor passes positionally or by these names), not
        nominal.
        """
        for name in PROTOCOL_METHODS:
            spec = inspect.signature(getattr(TMBackend, name))
            impl = inspect.signature(getattr(backend, name))
            spec_params = [(p.name, p.default, p.kind)
                           for p in spec.parameters.values()
                           if p.name != "self"]
            impl_params = [(p.name, p.default, p.kind)
                           for p in impl.parameters.values()]
            assert impl_params == spec_params, \
                f"{type(backend).__name__}.{name}: {impl_params} != {spec_params}"

    def test_stats_shape_is_shared(self, backend):
        assert isinstance(backend.stats, SystemStats)
        assert {f.name for f in dataclasses.fields(backend.stats)} == \
            {f.name for f in dataclasses.fields(SystemStats)}


class TestBehaviour:
    def test_commit_discipline(self, backend):
        backend.thread(0, core=0)
        vid = backend.allocate_vid()
        assert vid == 1
        backend.begin_mtx(0, vid)
        backend.store(0, ADDR, 42)
        backend.output(0, "buffered")
        assert backend.committed_output == []
        backend.commit_mtx(0, vid)
        assert backend.last_committed == vid
        assert backend.stats.committed == 1
        assert backend.committed_output == ["buffered"]
        assert backend.load(0, ADDR).value == 42

    def test_explicit_abort_taxonomy(self, backend):
        """abort_mtx: MisspeculationError + EXPLICIT in the txctl taxonomy."""
        backend.thread(0, core=0)
        vid = backend.allocate_vid()
        backend.begin_mtx(0, vid)
        backend.store(0, ADDR, 7)
        backend.output(0, "doomed")
        with pytest.raises(MisspeculationError) as err:
            backend.abort_mtx(0, vid)
        assert err.value.cause is AbortCause.EXPLICIT
        assert backend.stats.aborted == 1
        assert backend.stats.explicit_aborts == 1
        assert backend.stats.contention.by_cause.get("explicit") == 1
        # Speculative state and buffered output are gone.
        assert backend.committed_output == []
        assert backend.last_committed == 0

    def test_runs_a_workload_end_to_end(self):
        """Every backend drives the paradigm executors unchanged."""
        for name in BACKENDS:
            workload = make_benchmark("ispell", 0.2)
            result = run_workload(workload, backend=name)
            system = result.system
            assert workload.observed_result(system) == \
                workload.expected_result(system), name
            assert system.stats.committed > 0, name


class TestSmtxConflictCause:
    def test_validation_failure_stamps_conflict(self):
        """A real SMTX read-validation failure carries AbortCause.CONFLICT."""
        system = SMTXSystem(config=MachineConfig())
        system.thread(0, core=0)
        system.thread(1, core=1)
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.load(0, ADDR)              # logged read of committed value 0
        system.contexts[1].vid = 0
        system.kernel_store(1, ADDR, 99)  # committed state changes under us
        with pytest.raises(MisspeculationError) as err:
            system.commit_mtx(0, vid)
        assert err.value.cause is AbortCause.CONFLICT
        assert system.stats.contention.by_cause.get("conflict") == 1
        assert system.stats.aborted == 1
        assert system.stats.explicit_aborts == 0
