"""Session + profiler tests: exact reconciliation, the cycle identity,
spin retags, and the sweep-engine integration."""

from __future__ import annotations

import pytest

from repro.experiments.engine import RunRequest, SweepEngine, execute_request
from repro.obs import hooks
from repro.obs.profile import Attribution, attribute, digest, hot_lines
from repro.obs.session import CATEGORIES, ObsSession
from repro.cpu.isa import Work
from repro.runtime.paradigms import (
    run_ps_dswp,
    run_workload,
    wait_commit_turn,
)
from repro.txctl import ContentionManager, make_policy
from repro.workloads import make_benchmark
from repro.workloads.contended import HighContentionListWorkload


def _observed_contended(scale_nodes: int = 24):
    """The golden contended-list scenario, run under observation."""
    workload = HighContentionListWorkload(nodes=scale_nodes,
                                          rmw_per_iteration=2)
    manager = ContentionManager(policy=make_policy("backoff"))
    session = ObsSession()
    with session.activate():
        result = run_ps_dswp(workload, manager=manager)
    session.detach()
    session.finalize(result)
    return session, result


@pytest.fixture(scope="module")
def contended():
    return _observed_contended()


class TestReconciliation:
    def test_commits_and_aborts_reconcile_exactly(self, contended):
        session, result = contended
        report = session.reconcile(result.system.stats)
        assert report["ok"], report["checks"]
        # The run must actually exercise both paths for this to mean much.
        assert report["checks"]["commits"]["stats"] > 0
        assert report["checks"]["aborts"]["stats"] > 0

    def test_abort_causes_match_txctl_taxonomy(self, contended):
        session, result = contended
        checks = session.reconcile(result.system.stats)["checks"]
        assert checks["aborts_by_cause"]["observed"] \
            == checks["aborts_by_cause"]["stats"]

    def test_reconcile_on_abort_free_run(self):
        workload = make_benchmark("052.alvinn", 0.1)
        session = ObsSession()
        with session.activate():
            result = run_workload(workload)
        session.detach()
        session.finalize(result)
        report = session.reconcile(result.system.stats)
        assert report["ok"], report["checks"]
        assert report["checks"]["aborts"]["observed"] == 0

    def test_metrics_registry_mirrors_lifecycle(self, contended):
        session, result = contended
        counters = session.registry.collect()["counters"]
        assert counters["tx_commits_total"] == result.system.stats.committed
        abort_series = {name: value for name, value in counters.items()
                        if name.startswith("aborts_total{")}
        assert sum(abort_series.values()) == result.system.stats.aborted


class TestAttribution:
    def test_identity_every_thread_sums_to_makespan(self, contended):
        session, _ = contended
        att = attribute(session)
        assert att.identity_ok
        assert att.makespan == session.makespan
        for tid, cats in att.per_thread.items():
            assert sum(cats.values()) == att.makespan, (tid, cats)
        assert att.total_thread_cycles \
            == att.makespan * len(att.per_thread)

    def test_only_known_categories(self, contended):
        session, _ = contended
        att = attribute(session)
        assert set(att.totals) <= set(CATEGORIES)
        assert set(att.categories) <= set(CATEGORIES)

    def test_aborting_run_pays_abort_replay(self, contended):
        session, _ = contended
        att = attribute(session)
        assert att.totals.get("useful", 0) > 0
        assert att.totals.get("abort_replay", 0) > 0

    def test_commit_stall_spins_are_retagged(self):
        # Drive wait_commit_turn directly: its spin polls must come back
        # retagged commit_stall against the waiting VID.
        session = ObsSession()
        session._current_tid = 7

        class Backend:
            last_committed = 0

        backend = Backend()
        with session.activate():
            gen = wait_commit_turn(backend, 3)
            for spin in range(3):
                op = next(gen)
                assert isinstance(op, Work)
                # Mimic the executor recording the spin op as a sample.
                session._seq += 1
                session.samples.append(
                    [session._seq, 7, 100 + spin * op.cycles,
                     op.cycles, 0, None])
                session._tid_sample_idx.setdefault(7, []).append(
                    len(session.samples) - 1)
            backend.last_committed = 2
            with pytest.raises(StopIteration):
                next(gen)
        assert [row[5] for row in session.samples] == ["commit_stall"] * 3
        assert [row[4] for row in session.samples] == [3] * 3
        counters = session.registry.collect()["counters"]
        assert counters['spin_cycles_total{category="commit_stall"}'] \
            == sum(row[3] for row in session.samples)

    def test_spin_branches_yield_identical_op_streams(self):
        # The traced and untraced branches of the spin helper must emit
        # byte-identical op streams (the S6 no-behaviour-change contract).
        def run(observed: bool):
            class Backend:
                last_committed = 0

            backend = Backend()
            ops = []

            def drive():
                gen = wait_commit_turn(backend, 2)
                try:
                    count = 0
                    while True:
                        ops.append(next(gen))
                        count += 1
                        if count == 4:
                            backend.last_committed = 1
                except StopIteration:
                    pass

            if observed:
                with ObsSession().activate():
                    drive()
            else:
                drive()
            return ops

        assert run(True) == run(False)

    def test_spans_are_well_formed(self, contended):
        session, result = contended
        spans = session.all_spans()
        assert spans
        outcomes = {span.outcome for span in spans}
        assert outcomes <= {"commit", "abort", "squashed", "open",
                            "orphaned"}
        assert sum(1 for s in spans if s.outcome == "commit") \
            == result.system.stats.committed
        for span in spans:
            norm = span.normalized()
            assert norm.allocate_ts <= norm.begin_ts \
                <= norm.exec_end_ts <= norm.end_ts

    def test_digest_schema(self, contended):
        session, result = contended
        d = digest(session, attribute(session))
        assert d["schema"] == "hmtx-obs-digest/1"
        assert d["identity_ok"] is True
        assert d["commits"] == result.system.stats.committed
        assert d["aborts"] == result.system.stats.aborted
        assert sum(d["aborts_by_cause"].values()) == d["aborts"]
        assert d["hot_conflict_lines"]  # contended list -> hot lines exist

    def test_hot_lines_ranking(self):
        ranked = hot_lines({0x100: 3, 0x40: 3, 0x200: 9}, top=2)
        assert ranked == [("0x200", 9), ("0x40", 3)]

    def test_empty_session_attribution(self):
        att = attribute(ObsSession())
        assert isinstance(att, Attribution)
        assert att.identity_ok
        assert att.totals == {}


class TestEngineIntegration:
    def test_execute_request_observed_carries_digest(self):
        request = RunRequest(workload="contended-list", scale=0.25,
                             policy="backoff", observe=True)
        record = execute_request(request)
        assert record.obs_digest is not None
        assert record.obs_digest["schema"] == "hmtx-obs-digest/1"
        assert record.obs_digest["commits"] == record.committed
        assert record.obs_digest["aborts"] == record.aborted
        assert record.obs_digest["identity_ok"] is True
        assert record.to_report()["obs_digest"] == record.obs_digest
        # The hook point must be clean again after the run.
        assert hooks.active is None

    def test_observed_run_is_simulation_identical(self):
        base = execute_request(RunRequest(workload="contended-list",
                                          scale=0.25, policy="backoff"))
        observed = execute_request(RunRequest(workload="contended-list",
                                              scale=0.25, policy="backoff",
                                              observe=True))
        assert observed.cycles == base.cycles
        assert observed.committed == base.committed
        assert observed.aborted == base.aborted
        assert observed.ops_executed == base.ops_executed
        assert base.obs_digest is None

    def test_sweep_engine_observe_flag_and_determinism(self):
        requests = [RunRequest(workload="contended-list", scale=0.25,
                               policy="backoff"),
                    RunRequest(workload="capacity-hog", scale=0.5,
                               policy="capacity-aware")]
        serial = SweepEngine(jobs=1, observe=True).run(requests)
        pooled = SweepEngine(jobs=2, observe=True).run(requests)
        assert [r.to_report() for r in serial] \
            == [r.to_report() for r in pooled]
        assert all(r.obs_digest is not None for r in serial)


class TestHookPoint:
    def test_nested_activation_rejected(self):
        outer = ObsSession()
        with outer.activate():
            with pytest.raises(RuntimeError):
                with ObsSession().activate():
                    pass  # pragma: no cover
        assert hooks.active is None

    def test_detach_restores_originals(self):
        workload = HighContentionListWorkload(nodes=8,
                                              rmw_per_iteration=1)
        session = ObsSession()
        with session.activate():
            result = run_ps_dswp(workload)
        session.detach()
        system = result.system
        # The wrappers carry ``__wrapped__`` (functools.wraps); after
        # detach the restored originals must not.
        for name in ("load", "store", "begin_mtx", "commit_mtx",
                     "allocate_vid", "abort_mtx", "vid_reset"):
            assert not hasattr(getattr(system, name), "__wrapped__"), name
        session.detach()  # idempotent
