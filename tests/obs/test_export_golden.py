"""S3: golden Chrome-trace timeline for the contended-list scenario, plus
the exporter's span-nesting schema checks.

The golden pins the full observed timeline — per-core tracks, per-VID
async spans, conflict instants, counter tracks — of the same
deterministic contended-list run the fast-path golden suite replays.
Regenerate (only after an intentional modelled-behaviour or exporter
change) with::

    PYTHONPATH=src python -m pytest tests/obs/test_export_golden.py \
        --regen-goldens
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.obs.export import (
    GANTT_GLYPHS,
    render_gantt,
    to_chrome_trace,
    validate_trace,
    write_chrome_trace,
)
from repro.obs.profile import attribute
from repro.obs.session import ObsSession
from repro.obs.timeline import build_timeline
from repro.runtime.paradigms import run_ps_dswp
from repro.txctl import ContentionManager, make_policy
from repro.workloads.contended import HighContentionListWorkload

GOLDEN_PATH = pathlib.Path(__file__).parent.parent / "goldens" \
    / "timeline_contended_list.json"


@pytest.fixture(scope="module")
def observed():
    """The golden scenario (contended-list, backoff) observed end to end."""
    workload = HighContentionListWorkload(nodes=24, rmw_per_iteration=2)
    manager = ContentionManager(policy=make_policy("backoff"))
    session = ObsSession()
    with session.activate():
        result = run_ps_dswp(workload, manager=manager)
    session.detach()
    session.finalize(result)
    timeline = build_timeline(session, attribute(session))
    trace = to_chrome_trace(timeline, label="contended-list/hmtx")
    return session, result, timeline, trace


@pytest.fixture(scope="module")
def golden(request, observed):
    _, _, _, trace = observed
    if request.config.getoption("--regen-goldens"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(trace, indent=1,
                                          sort_keys=True) + "\n")
    if not GOLDEN_PATH.exists():
        pytest.fail(f"{GOLDEN_PATH} missing; run with --regen-goldens")
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenTimeline:
    def test_trace_matches_golden(self, observed, golden):
        _, _, _, trace = observed
        assert trace["otherData"] == golden["otherData"]
        assert len(trace["traceEvents"]) == len(golden["traceEvents"])
        for got, want in zip(trace["traceEvents"], golden["traceEvents"]):
            assert got == want

    def test_golden_file_validates(self, golden):
        counts = validate_trace(golden)
        # Metadata, slices, paired spans, instants and counters must all
        # be present — a timeline missing a section is not golden.
        for ph in ("M", "X", "b", "e", "i", "C"):
            assert counts.get(ph, 0) > 0, (ph, counts)
        assert counts["b"] == counts["e"]

    def test_write_matches_golden_bytes(self, observed, tmp_path):
        _, _, timeline, _ = observed
        out = tmp_path / "timeline.json"
        write_chrome_trace(timeline, str(out), label="contended-list/hmtx")
        assert out.read_text() == GOLDEN_PATH.read_text()

    def test_spans_reconcile_with_system_stats(self, observed, golden):
        # The acceptance contract, checked against the exported artifact:
        # per-VID spans and abort instants reconcile with SystemStats.
        _, result, _, _ = observed
        stats = result.system.stats
        begins = [e for e in golden["traceEvents"] if e["ph"] == "b"]
        committed = sum(1 for e in begins
                        if e["args"].get("outcome") == "commit")
        assert committed == stats.committed
        aborts = [e for e in golden["traceEvents"]
                  if e["ph"] == "i" and e["name"] == "abort"]
        assert len(aborts) == stats.aborted
        by_cause = {}
        for event in aborts:
            cause = event["args"]["cause"]
            by_cause[cause] = by_cause.get(cause, 0) + 1
        assert by_cause == {k: v for k, v in
                            stats.contention.by_cause.items() if v}

    def test_gantt_renders_every_thread(self, observed):
        _, _, timeline, _ = observed
        text = render_gantt(timeline, width=40)
        for tid, core in timeline.thread_cores.items():
            assert f"t{tid}/c{core} |" in text
        assert "legend:" in text
        assert GANTT_GLYPHS["useful"] in text


class TestSchemaChecks:
    def _minimal(self) -> dict:
        return {
            "traceEvents": [
                {"ph": "M", "pid": 1, "name": "process_name",
                 "args": {"name": "t"}},
                {"ph": "b", "pid": 1, "tid": 0, "cat": "tx", "id": 0,
                 "name": "VID 1", "ts": 10,
                 "args": {"vid": 1, "attempt": 0, "allocate_ts": 10,
                          "begin_ts": 12, "exec_end_ts": 20,
                          "end_ts": 25}},
                {"ph": "e", "pid": 1, "tid": 0, "cat": "tx", "id": 0,
                 "name": "VID 1", "ts": 25, "args": {}},
            ],
        }

    def test_minimal_valid(self):
        assert validate_trace(self._minimal()) == {"M": 1, "b": 1, "e": 1}

    def test_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_trace({"otherData": {}})

    def test_unpaired_async_end(self):
        trace = self._minimal()
        del trace["traceEvents"][1]
        with pytest.raises(ValueError, match="end without begin"):
            validate_trace(trace)

    def test_unterminated_span(self):
        trace = self._minimal()
        del trace["traceEvents"][2]
        with pytest.raises(ValueError, match="unterminated"):
            validate_trace(trace)

    def test_double_open_rejected(self):
        trace = self._minimal()
        trace["traceEvents"].insert(2, dict(trace["traceEvents"][1]))
        with pytest.raises(ValueError, match="opened twice"):
            validate_trace(trace)

    def test_end_before_begin(self):
        trace = self._minimal()
        trace["traceEvents"][2]["ts"] = 5
        with pytest.raises(ValueError, match="ends at 5 before"):
            validate_trace(trace)

    def test_nesting_violation_rejected(self):
        trace = self._minimal()
        trace["traceEvents"][1]["args"]["begin_ts"] = 30  # > exec_end_ts
        with pytest.raises(ValueError, match="not nested"):
            validate_trace(trace)

    def test_open_ts_must_equal_allocate(self):
        trace = self._minimal()
        trace["traceEvents"][1]["ts"] = 11
        with pytest.raises(ValueError, match="allocate_ts"):
            validate_trace(trace)

    def test_conflict_outside_span_rejected(self):
        trace = self._minimal()
        trace["traceEvents"].append(
            {"ph": "i", "pid": 1, "tid": 0, "s": "g", "name": "conflict",
             "ts": 99, "args": {"vid": 1}})
        with pytest.raises(ValueError, match="falls outside"):
            validate_trace(trace)

    def test_negative_duration_rejected(self):
        trace = self._minimal()
        trace["traceEvents"].append(
            {"ph": "X", "pid": 1, "tid": 0, "cat": "cycles",
             "name": "useful", "ts": 0, "dur": -1, "args": {}})
        with pytest.raises(ValueError, match="bad ts/dur"):
            validate_trace(trace)
