"""Unit tests for the metrics registry."""

from __future__ import annotations

from repro.obs.registry import Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_caching_and_inc(self):
        registry = MetricsRegistry()
        a = registry.counter("aborts_total", cause="conflict")
        b = registry.counter("aborts_total", cause="conflict")
        assert a is b
        a.inc()
        b.inc(2)
        assert registry.counter("aborts_total", cause="conflict").value == 3

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("aborts_total", cause="conflict").inc()
        registry.counter("aborts_total", cause="capacity").inc(5)
        snap = registry.collect()
        assert snap["counters"]['aborts_total{cause="conflict"}'] == 1
        assert snap["counters"]['aborts_total{cause="capacity"}'] == 5

    def test_gauge_set_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("spec_footprint_bytes_peak")
        gauge.set_max(128)
        gauge.set_max(64)
        assert gauge.value == 128

    def test_histogram_buckets_cumulative(self):
        hist = Histogram(buckets=(10, 100))
        for value in (5, 7, 50, 1000):
            hist.observe(value)
        assert dict(hist.cumulative()) == {"10": 2, "100": 3, "+Inf": 4}
        assert hist.count == 4
        assert hist.total == 5 + 7 + 50 + 1000
        assert hist.mean == hist.total / 4

    def test_collect_is_sorted_and_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("z_total").inc()
            registry.counter("a_total", x="2").inc()
            registry.counter("a_total", x="1").inc()
            registry.gauge("g").set(7)
            registry.histogram("h", buckets=(1,)).observe(1)
            return registry
        assert build().collect() == build().collect()
        counters = build().collect()["counters"]
        assert list(counters) == sorted(counters)

    def test_format_text_one_series_per_line(self):
        registry = MetricsRegistry()
        registry.counter("tx_commits_total").inc(3)
        registry.histogram("commit_latency_cycles",
                           buckets=(8,)).observe(4)
        text = registry.format_text()
        assert "tx_commits_total 3" in text
        assert 'commit_latency_cycles_bucket{le="8"} 1' in text
        assert "commit_latency_cycles_count 1" in text


class TestQuantile:
    def test_fraction_out_of_range_raises(self):
        hist = Histogram(buckets=(10,))
        for q in (-0.1, 1.1):
            try:
                hist.quantile(q)
            except ValueError:
                continue
            raise AssertionError(f"quantile({q}) should raise")

    def test_empty_histogram_is_zero(self):
        hist = Histogram(buckets=(10, 100))
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(0.99) == 0.0

    def test_uniform_distribution_quantiles(self):
        # 1..100 into power-of-two-ish buckets: interpolation should
        # land within one bucket's resolution of the exact quantile.
        hist = Histogram(buckets=(8, 16, 32, 64, 128))
        for value in range(1, 101):
            hist.observe(value)
        assert abs(hist.quantile(0.5) - 50) <= 4
        # p90 falls in the (64, 128] bucket, whose width (and hence
        # interpolation error, after capping at the observed max) is 64.
        assert 64 < hist.quantile(0.9) <= 100
        assert hist.quantile(1.0) == 100.0
        assert hist.quantile(0.0) == 0.0

    def test_quantiles_are_monotone_in_q(self):
        hist = Histogram(buckets=(8, 64, 512, 4096))
        for value in (3, 9, 70, 600, 5000, 12000, 90):
            hist.observe(value)
        qs = [hist.quantile(q) for q in
              (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0)]
        assert qs == sorted(qs)

    def test_quantile_never_exceeds_observed_max(self):
        hist = Histogram(buckets=(8, 64, 512))
        hist.observe(5)
        hist.observe(20)
        assert hist.quantile(0.999) <= 20
        assert hist.max_value == 20

    def test_overflow_bucket_interpolates_to_max(self):
        hist = Histogram(buckets=(10,))
        for value in (5, 100, 200, 1000):
            hist.observe(value)
        p999 = hist.quantile(0.999)
        assert 10 < p999 <= 1000
        assert hist.quantile(1.0) == 1000.0

    def test_single_bucket_all_values_equal(self):
        hist = Histogram(buckets=(64,))
        for _ in range(10):
            hist.observe(32)
        assert 0 < hist.quantile(0.5) <= 32

    def test_all_zero_observations(self):
        hist = Histogram(buckets=(8,))
        for _ in range(5):
            hist.observe(0)
        assert hist.quantile(0.99) == 0.0


class TestSnapshotRoundTrip:
    def test_from_cumulative_reproduces_quantiles(self):
        hist = Histogram(buckets=(8, 64, 512, 4096))
        for value in (3, 9, 70, 600, 5000, 12000, 90, 2):
            hist.observe(value)
        rebuilt = Histogram.from_cumulative(hist.snapshot())
        assert rebuilt.buckets == hist.buckets
        assert rebuilt.counts == hist.counts
        assert rebuilt.overflow == hist.overflow
        assert rebuilt.count == hist.count
        assert rebuilt.total == hist.total
        assert rebuilt.max_value == hist.max_value
        for q in (0.5, 0.9, 0.99, 0.999):
            assert rebuilt.quantile(q) == hist.quantile(q)

    def test_from_cumulative_without_max_field(self):
        # Snapshots written before max tracking: quantiles stay finite.
        hist = Histogram(buckets=(8, 64))
        for value in (4, 30, 500):
            hist.observe(value)
        snap = hist.snapshot()
        del snap["max"]
        rebuilt = Histogram.from_cumulative(snap)
        assert rebuilt.max_value == 0
        assert rebuilt.quantile(0.99) == 0.0
