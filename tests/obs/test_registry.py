"""Unit tests for the metrics registry."""

from __future__ import annotations

from repro.obs.registry import Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_caching_and_inc(self):
        registry = MetricsRegistry()
        a = registry.counter("aborts_total", cause="conflict")
        b = registry.counter("aborts_total", cause="conflict")
        assert a is b
        a.inc()
        b.inc(2)
        assert registry.counter("aborts_total", cause="conflict").value == 3

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("aborts_total", cause="conflict").inc()
        registry.counter("aborts_total", cause="capacity").inc(5)
        snap = registry.collect()
        assert snap["counters"]['aborts_total{cause="conflict"}'] == 1
        assert snap["counters"]['aborts_total{cause="capacity"}'] == 5

    def test_gauge_set_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("spec_footprint_bytes_peak")
        gauge.set_max(128)
        gauge.set_max(64)
        assert gauge.value == 128

    def test_histogram_buckets_cumulative(self):
        hist = Histogram(buckets=(10, 100))
        for value in (5, 7, 50, 1000):
            hist.observe(value)
        assert dict(hist.cumulative()) == {"10": 2, "100": 3, "+Inf": 4}
        assert hist.count == 4
        assert hist.total == 5 + 7 + 50 + 1000
        assert hist.mean == hist.total / 4

    def test_collect_is_sorted_and_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("z_total").inc()
            registry.counter("a_total", x="2").inc()
            registry.counter("a_total", x="1").inc()
            registry.gauge("g").set(7)
            registry.histogram("h", buckets=(1,)).observe(1)
            return registry
        assert build().collect() == build().collect()
        counters = build().collect()["counters"]
        assert list(counters) == sorted(counters)

    def test_format_text_one_series_per_line(self):
        registry = MetricsRegistry()
        registry.counter("tx_commits_total").inc(3)
        registry.histogram("commit_latency_cycles",
                           buckets=(8,)).observe(4)
        text = registry.format_text()
        assert "tx_commits_total 3" in text
        assert 'commit_latency_cycles_bucket{le="8"} 1' in text
        assert "commit_latency_cycles_count 1" in text
