"""The causal what-if profiler: knob registry, sensitivities, artifact."""

import json

import pytest

from repro.core.config import MachineConfig
from repro.experiments.scaling_sweep import scaling_machine
from repro.obs.whatif import (
    KNOBS,
    WHATIF_SCHEMA,
    format_whatif,
    knobs_by_name,
    run_whatif,
    write_report,
)


class TestKnobRegistry:
    def test_unknown_knob_raises(self):
        with pytest.raises(KeyError):
            knobs_by_name(["reset_scrub", "warp_drive"])

    def test_apply_round_trips_at_factor_one(self):
        machine = scaling_machine("2s8c")
        for knob in KNOBS:
            if not knob.applies(machine):
                continue
            perturbed, value = knob.apply(machine, 1.0)
            assert value == knob.value(machine)
            assert perturbed == machine

    def test_perturbation_changes_the_cache_key(self):
        from repro.experiments.engine import config_digest
        machine = scaling_machine("2s8c")
        for knob in KNOBS:
            if not knob.applies(machine):
                continue
            up, _ = knob.apply(machine, 1.25)
            assert config_digest(up) != config_digest(machine), knob.name

    def test_dir_occupancy_gated_on_directory_coherence(self):
        snoopy = MachineConfig()  # flat default: snooping bus
        assert snoopy.coherence != "directory"
        knob = knobs_by_name(["dir_occupancy"])[0]
        assert not knob.applies(snoopy)
        assert knob.applies(scaling_machine("2s8c"))


@pytest.fixture(scope="module")
def quick_report():
    return run_whatif(presets=("2s8c",), systems=("hmtx",),
                      workloads=("contended-list",),
                      knobs=("reset_scrub", "cross_socket_hop"))


class TestReport:
    def test_schema_and_shape(self, quick_report):
        assert quick_report["schema"] == WHATIF_SCHEMA
        (combo,) = quick_report["combos"]
        assert combo["preset"] == "2s8c"
        assert combo["workload"] == "contended-list"
        assert {row["knob"] for row in combo["knobs"]} \
            == {"reset_scrub", "cross_socket_hop"}
        assert combo["ranking"] == [row["knob"] for row in combo["knobs"]]

    def test_rows_ranked_by_absolute_sensitivity(self, quick_report):
        (combo,) = quick_report["combos"]
        magnitudes = [abs(row["sensitivity"]) for row in combo["knobs"]]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_baseline_phase_shares_sum_to_one(self, quick_report):
        (combo,) = quick_report["combos"]
        assert sum(combo["baseline"]["phase_shares"].values()) \
            == pytest.approx(1.0, abs=0.01)

    def test_cross_hop_dominates_a_contended_run(self, quick_report):
        # Every cross-socket conflict pays the interconnect hop; the
        # scrub never fires here (no reset).  Sensitivity must reflect
        # that, whatever the cycle shares say — the exact point of
        # causal profiling.
        (combo,) = quick_report["combos"]
        by_knob = {row["knob"]: row for row in combo["knobs"]}
        assert by_knob["cross_socket_hop"]["sensitivity"] \
            > abs(by_knob["reset_scrub"]["sensitivity"])
        assert by_knob["cross_socket_hop"]["sensitivity"] > 0

    def test_report_is_deterministic_across_jobs(self):
        kwargs = dict(presets=("2s8c",), systems=("hmtx",),
                      workloads=("svc-kv",), knobs=("l1_miss",),
                      scale=0.5)
        serial = run_whatif(jobs=1, **kwargs)
        parallel = run_whatif(jobs=2, **kwargs)
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)

    def test_bad_delta_rejected(self):
        with pytest.raises(ValueError):
            run_whatif(delta=0.0)
        with pytest.raises(ValueError):
            run_whatif(delta=1.0)

    def test_write_report_and_text_view(self, quick_report, tmp_path):
        path = write_report(quick_report, tmp_path / "w.json")
        again = json.loads(path.read_text(encoding="utf-8"))
        assert again == json.loads(json.dumps(quick_report))
        text = format_whatif(quick_report)
        assert "contended-list/hmtx on 2s8c" in text
        assert "cycle shares for contrast" in text


def test_committed_artifact_covers_two_presets_and_backends():
    import pathlib
    report = json.loads(
        (pathlib.Path(__file__).parents[2] / "REPORT_whatif.json")
        .read_text(encoding="utf-8"))
    assert report["schema"] == WHATIF_SCHEMA
    presets = {combo["preset"] for combo in report["combos"]}
    systems = {combo["system"] for combo in report["combos"]}
    assert len(presets) >= 2
    assert len(systems) >= 2
    for combo in report["combos"]:
        assert combo["knobs"], combo["preset"]
