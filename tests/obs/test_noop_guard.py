"""S6: the instrumentation-off regression guard.

Three guarantees, in increasing strength:

1. The hook point defaults to ``None`` — no session, no wrapping, the
   simulator runs its unmodified methods (the fast-path goldens in
   ``tests/integration/test_fastpath_golden.py`` then pin bit-identical
   behaviour end to end).
2. Activating and detaching a session leaves no residue: a run *after*
   an observed run is bit-identical to a run that never saw one.
3. Observation itself is behaviour-free: the snapshot of an *observed*
   run equals the snapshot of an unobserved run, counter for counter.
"""

from __future__ import annotations

from repro.obs import hooks
from repro.obs.session import ObsSession

from tests.integration.test_fastpath_golden import (
    _run_capacity_hog,
    _run_contended_list,
    _run_fig8_slice,
)


class TestHookDefault:
    def test_hook_point_defaults_to_none(self):
        assert hooks.active is None

    def test_deactivate_is_idempotent(self):
        hooks.deactivate()
        assert hooks.active is None


class TestNoResidue:
    def test_run_after_observed_run_is_bit_identical(self):
        baseline = _run_contended_list()
        session = ObsSession()
        with session.activate():
            _run_contended_list()
        session.detach()
        assert hooks.active is None
        again = _run_contended_list()
        assert again == baseline

    def test_exception_inside_activation_clears_hook(self):
        try:
            with ObsSession().activate():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert hooks.active is None


class TestObservationIsBehaviourFree:
    """An instrumented run must be simulation-identical: same makespan,
    same stats, same cache counters, same workload result."""

    def _observed(self, run):
        session = ObsSession()
        with session.activate():
            snap = run()
        session.detach()
        return snap

    def test_contended_list_identical_under_observation(self):
        assert self._observed(_run_contended_list) == _run_contended_list()

    def test_capacity_hog_identical_under_observation(self):
        assert self._observed(_run_capacity_hog) == _run_capacity_hog()

    def test_fig8_benchmark_identical_under_observation(self):
        run = lambda: _run_fig8_slice("ispell")  # noqa: E731
        assert self._observed(run) == run()
