"""The cross-run digest history store: generations, refs, dedupe."""

import dataclasses
import json

import pytest

from repro.experiments.engine import RunRequest, SweepEngine
from repro.obs.history import (
    BUNDLE_SCHEMA,
    HISTORY_SCHEMA,
    HistoryStore,
    digest_id,
    format_history,
    git_describe,
)


def observed_pairs(workload="contended-list", scale=0.5, **kwargs):
    engine = SweepEngine()
    request = RunRequest(workload=workload, system="hmtx", scale=scale,
                         observe=True, **kwargs)
    engine.run([request])
    assert engine.observed_pairs, "engine should collect observed runs"
    return engine.observed_pairs


@pytest.fixture(scope="module")
def pairs():
    return observed_pairs()


class TestAppend:
    def test_one_generation_per_append(self, tmp_path, pairs):
        store = HistoryStore(tmp_path / "h")
        first = store.append_runs(pairs, source="test", git="g1")
        second = store.append_runs(pairs, source="test", git="g2")
        assert first == {"generation": 1, "runs": 1, "new_digests": 1}
        # Identical payload: a new generation, zero new digest bytes.
        assert second == {"generation": 2, "runs": 1, "new_digests": 0}
        assert len(store.runs()) == 2
        assert len(store.digests()) == 1

    def test_run_lines_carry_schema_and_digest_id(self, tmp_path, pairs):
        store = HistoryStore(tmp_path / "h")
        store.append_runs(pairs, source="test", git="g")
        (run,) = store.runs()
        assert run["schema"] == HISTORY_SCHEMA
        assert run["workload"] == "contended-list"
        assert run["digest_id"] == digest_id(pairs[0][1].obs_digest)
        assert run["makespan"] == pairs[0][1].cycles

    def test_unobserved_pairs_allocate_no_generation(self, tmp_path, pairs):
        store = HistoryStore(tmp_path / "h")
        bare = [(request,
                 dataclasses.replace(record, obs_digest=None))
                for request, record in pairs]
        out = store.append_runs(bare, source="test", git="g")
        assert out == {"generation": None, "runs": 0, "new_digests": 0}
        assert not store.runs_path.exists()


class TestResolve:
    @pytest.fixture()
    def store(self, tmp_path, pairs):
        store = HistoryStore(tmp_path / "h")
        store.append_runs(pairs, source="a", git="one")
        store.append_runs(pairs, source="b", git="two")
        store.append_runs(pairs, source="c", git="two")
        return store

    def test_head_refs(self, store):
        assert [r["generation"] for r in store.resolve("HEAD")] == [3]
        assert [r["generation"] for r in store.resolve("HEAD~1")] == [2]
        assert [r["generation"] for r in store.resolve("HEAD~2")] == [1]

    def test_gen_and_git_refs(self, store):
        assert store.resolve("gen:1")[0]["source"] == "a"
        # git: picks the newest generation under the label.
        assert store.resolve("git:two")[0]["source"] == "c"

    def test_digest_is_inlined(self, store, pairs):
        (run,) = store.resolve("HEAD")
        # The stored payload went through JSON (tuples become lists);
        # load_digest is the normalizing equality.
        from repro.obs.profile import load_digest
        assert load_digest(run["digest"]) \
            == load_digest(pairs[0][1].obs_digest)

    def test_bad_refs_raise_keyerror(self, store, tmp_path):
        with pytest.raises(KeyError):
            store.resolve("nonsense")
        with pytest.raises(KeyError):
            store.resolve("HEAD~9")
        with pytest.raises(KeyError):
            store.resolve("gen:42")
        with pytest.raises(KeyError):
            store.resolve("git:never")
        with pytest.raises(KeyError):
            HistoryStore(tmp_path / "empty").resolve("HEAD")

    def test_export_bundle(self, store):
        bundle = store.export_bundle("HEAD")
        assert bundle["schema"] == BUNDLE_SCHEMA
        (entry,) = bundle["entries"]
        assert entry["workload"] == "contended-list"
        assert entry["digest"]["schema"] == "hmtx-obs-digest/1"
        # The bundle is JSON round-trippable as committed baselines are.
        assert json.loads(json.dumps(bundle)) == bundle

    def test_format_history_lists_generations(self, store):
        text = format_history(store)
        assert "3 generation(s)" in text
        assert "HEAD" in text and "gen:3" in text


class TestEngineCollection:
    def test_cache_hits_are_not_recollected(self):
        engine = SweepEngine()
        request = RunRequest(workload="contended-list", system="hmtx",
                             scale=0.5, observe=True)
        engine.run([request])
        engine.run([request])  # cache hit
        assert len(engine.observed_pairs) == 1


def test_git_describe_degrades_to_unknown(tmp_path):
    assert git_describe(cwd=str(tmp_path)) == "unknown"
