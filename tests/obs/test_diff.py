"""Differential attribution: zero self-diff, golden digest, scrub pair.

The committed golden (``tests/goldens/obs_digest_contended_list.json``)
pins the full ``hmtx-obs-digest/1`` payload of a deterministic observed
run.  Regenerate (only after an intentional modelled-behaviour change)
with::

    PYTHONPATH=src python -m pytest tests/obs/test_diff.py --regen-goldens
"""

import dataclasses
import json
import pathlib

import pytest

from repro.core.config import MachineConfig
from repro.experiments.engine import RunRequest, SweepEngine
from repro.experiments.scaling_sweep import QUICK_PRESETS
from repro.obs.diff import (
    DIFF_SCHEMA,
    diff_bundles,
    diff_digest,
    format_diff,
    load_entries,
    render_json,
)
from repro.obs.history import bundle
from repro.obs.profile import DIGEST_SCHEMA, load_digest

GOLDEN_PATH = pathlib.Path(__file__).parent.parent / "goldens" \
    / "obs_digest_contended_list.json"


def observed_digest(jobs=1, **request_kwargs):
    engine = SweepEngine(jobs=jobs)
    defaults = dict(workload="contended-list", system="hmtx", scale=0.5,
                    observe=True)
    defaults.update(request_kwargs)
    (record,) = engine.run([RunRequest(**defaults)])
    return record.obs_digest, record


@pytest.fixture(scope="module")
def digest():
    payload, _ = observed_digest()
    return payload


@pytest.fixture(scope="module")
def golden(request, digest):
    if request.config.getoption("--regen-goldens"):
        GOLDEN_PATH.write_text(
            json.dumps(digest, indent=1, sort_keys=True) + "\n",
            encoding="utf-8")
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


class TestGoldenDigest:
    def test_current_run_matches_committed_golden(self, digest, golden):
        assert load_digest(digest) == load_digest(golden)

    def test_golden_schema_and_key_normalization(self, golden):
        assert golden["schema"] == DIGEST_SCHEMA
        loaded = load_digest(golden)
        # JSON delivers str socket keys; load_digest gives back ints.
        assert all(isinstance(k, int) for k in loaded["per_socket"])
        assert all(isinstance(k, int)
                   for k in loaded["hot_conflict_lines_by_socket"])

    def test_self_diff_is_exactly_zero(self, golden):
        diff = diff_digest(golden, golden)
        assert diff["zero"] is True
        assert diff["makespan"]["delta"] == 0
        assert diff["attribution"] == []
        assert all(entry["delta"] == 0
                   for entry in diff["phases"].values())

    def test_diff_artifact_identical_across_jobs(self, golden):
        serial, _ = observed_digest(jobs=1)
        parallel, _ = observed_digest(jobs=2)
        run = {"workload": "contended-list", "system": "hmtx",
               "scale": 0.5}
        one = render_json(diff_bundles(bundle([(run, serial)]),
                                       bundle([(run, golden)])))
        two = render_json(diff_bundles(bundle([(run, parallel)]),
                                       bundle([(run, golden)])))
        assert one == two
        assert json.loads(one)["zero"] is True


def scrub_pair():
    """Closed-loop run pair with the reset scrub doubled (vid_bits=4
    forces a mid-run reset onto the critical path)."""
    digests = []
    for scrub in (1.0, 2.0):
        topo = dataclasses.replace(QUICK_PRESETS["2s8c"],
                                   scrub_scale=scrub)
        machine = dataclasses.replace(MachineConfig.for_topology(topo),
                                      vid_bits=4)
        payload, record = observed_digest(machine=machine, scale=1.0)
        digests.append((payload, record))
    return digests


class TestScrubAttribution:
    @pytest.fixture(scope="class")
    def pair_diff(self):
        (before, _), (after, _) = scrub_pair()
        return diff_digest(before, after)

    def test_doubled_scrub_slows_the_makespan(self, pair_diff):
        assert pair_diff["makespan"]["delta"] > 0
        assert pair_diff["zero"] is False

    def test_majority_of_delta_is_vid_reset(self, pair_diff):
        top = pair_diff["attribution"][0]
        assert top["phase"] == "vid_reset"
        assert top["share"] > 0.5

    def test_reset_count_is_unchanged(self, pair_diff):
        # Same number of resets, each one costlier: the fingerprint that
        # separates "scrub got slower" from "resets got more frequent".
        assert pair_diff["vid_resets"]["delta"] == 0
        assert pair_diff["vid_resets"]["before"] >= 1


class TestBundlePairing:
    def test_bare_digest_files_pair_by_constant_key(self, tmp_path, golden):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(golden), encoding="utf-8")
        b.write_text(json.dumps(golden), encoding="utf-8")
        artifact = diff_bundles(load_entries(str(a)), load_entries(str(b)))
        assert artifact["schema"] == DIFF_SCHEMA
        assert len(artifact["pairs"]) == 1
        assert artifact["zero"] is True
        assert "ZERO DELTA" in format_diff(artifact)

    def test_unmatched_runs_are_reported_not_dropped(self, golden):
        run_a = {"workload": "contended-list", "system": "hmtx",
                 "scale": 0.5}
        run_b = {"workload": "other", "system": "hmtx", "scale": 0.5}
        artifact = diff_bundles(bundle([(run_a, golden)]),
                                bundle([(run_b, golden)]))
        assert artifact["pairs"] == []
        assert artifact["only_in_a"] == ["contended-list/hmtx/0.5"]
        assert artifact["only_in_b"] == ["other/hmtx/0.5"]
        assert artifact["zero"] is False

    def test_unrecognized_schema_raises(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "something/9"}),
                        encoding="utf-8")
        with pytest.raises(ValueError):
            load_entries(str(path))


def test_format_diff_names_the_moved_phase():
    (before, _), (after, _) = scrub_pair()
    run = {"workload": "contended-list", "system": "hmtx", "scale": 1.0}
    artifact = diff_bundles(bundle([(run, before)]),
                            bundle([(run, after)]))
    text = format_diff(artifact)
    assert "contended-list/hmtx: makespan +" in text
    assert "vid_reset" in text
    assert "(deltas present)" in text
