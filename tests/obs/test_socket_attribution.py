"""Per-socket cycle attribution through the obs layer (PR-8 tentpole)."""

from __future__ import annotations

import pytest

from repro.core.config import MachineConfig
from repro.experiments.engine import RunRequest, execute_request
from repro.obs.profile import format_breakdown, hot_lines_by_socket
from repro.topology import TopologySpec


@pytest.fixture(scope="module")
def record():
    machine = MachineConfig.for_topology(
        TopologySpec(sockets=2, cores_per_socket=4))
    return execute_request(RunRequest(workload="contended-list",
                                      system="hmtx", scale=1.0,
                                      machine=machine, observe=True))


class TestPerSocketDigest:
    def test_digest_carries_per_socket_categories(self, record):
        digest = record.obs_digest
        assert set(digest["per_socket"]) <= {"0", "1"}
        assert len(digest["per_socket"]) >= 1

    def test_per_socket_sums_to_totals(self, record):
        digest = record.obs_digest
        for category, cycles in digest["categories"].items():
            split = sum(cats.get(category, 0)
                        for cats in digest["per_socket"].values())
            assert split == cycles, category

    def test_hot_conflict_lines_grouped_by_home_socket(self, record):
        digest = record.obs_digest
        grouped = digest["hot_conflict_lines_by_socket"]
        flattened = {line for ranked in grouped.values()
                     for line, _ in ranked}
        top = {line for line, _ in digest["hot_conflict_lines"]}
        assert top <= flattened

    def test_vid_reset_count_present(self, record):
        assert record.obs_digest["vid_resets"] >= 0


class TestFlatDegenerates:
    def test_flat_run_attributes_everything_to_socket_zero(self):
        flat = execute_request(RunRequest(workload="contended-list",
                                          system="hmtx", scale=1.0,
                                          observe=True))
        digest = flat.obs_digest
        assert set(digest["per_socket"]) == {"0"}
        assert digest["per_socket"]["0"] == digest["categories"]

    def test_hot_lines_by_socket_flat_single_group(self):
        grouped = hot_lines_by_socket(
            type("S", (), {"topology": None})(), {0x40: 3, 0x80: 1})
        assert set(grouped) == {"0"}
        assert grouped["0"][0] == ("0x40", 3)


def test_breakdown_prints_socket_lines_when_multi():
    from repro.obs.profile import Attribution

    attribution = Attribution(
        makespan=100, categories=[],
        per_thread={0: {"useful": 100}, 1: {"vid_reset": 100}},
        totals={"useful": 100, "vid_reset": 100},
        per_socket={0: {"useful": 100}, 1: {"vid_reset": 100}})
    text = format_breakdown(attribution)
    assert "socket 0" in text and "socket 1" in text
    assert "vid_reset 100" in text
