"""Tests for the section 8 extensions: unbounded sets and the directory."""

import pytest

from repro.coherence import (
    DirectoryConfig,
    DirectoryHierarchy,
    HierarchyConfig,
    MemoryHierarchy,
    State,
)
from repro.core import HMTXSystem, MachineConfig
from repro.errors import MisspeculationError, SpeculativeOverflowError
from repro.runtime.paradigms import run_ps_dswp, run_sequential
from repro.workloads import LinkedListWorkload

TINY = dict(num_cores=2, l1_size=2 * 64, l1_assoc=2,
            l2_size=8 * 64, l2_assoc=4)


class TestUnboundedSets:
    def test_bounded_system_aborts_on_overflow(self):
        h = MemoryHierarchy(HierarchyConfig(**TINY))
        with pytest.raises(SpeculativeOverflowError):
            for i in range(200):
                h.store(0, 0x10000 + i * 64, 2, i)

    def test_unbounded_system_spills_instead(self):
        h = MemoryHierarchy(HierarchyConfig(unbounded_sets=True, **TINY))
        for i in range(200):
            h.store(0, 0x10000 + i * 64, 2, i)
        assert h.stats.spec_overflow_spills > 100
        assert h.overflow_table.resident_versions() > 100

    def test_spilled_versions_still_forward(self):
        """Uncommitted value forwarding must work through the table."""
        h = MemoryHierarchy(HierarchyConfig(unbounded_sets=True, **TINY))
        for i in range(120):
            h.store(0, 0x10000 + i * 64, 2, 1000 + i)
        for i in (0, 50, 119):
            assert h.load(1, 0x10000 + i * 64, 7).value == 1000 + i

    def test_spilled_versions_respect_windows(self):
        h = MemoryHierarchy(HierarchyConfig(unbounded_sets=True, **TINY))
        h.memory.write_word(0x10000, 5)
        for i in range(120):
            h.store(0, 0x10000 + i * 64, 3, 9)
        # An older VID must still see the pre-speculative value.
        assert h.load(1, 0x10000, 2).value == 5

    def test_spilled_versions_commit(self):
        h = MemoryHierarchy(HierarchyConfig(unbounded_sets=True, **TINY))
        for i in range(120):
            h.store(0, 0x10000 + i * 64, 1, i)
        h.commit(1)
        for i in (0, 64, 119):
            assert h.load(1, 0x10000 + i * 64, 0).value == i

    def test_spilled_versions_abort(self):
        h = MemoryHierarchy(HierarchyConfig(unbounded_sets=True, **TINY))
        h.memory.write_word(0x10000, 5)
        for i in range(120):
            h.store(0, 0x10000 + i * 64, 1, 99)
        h.abort()
        assert h.load(1, 0x10000, 0).value == 5

    def test_conflicts_still_detected_through_table(self):
        h = MemoryHierarchy(HierarchyConfig(unbounded_sets=True, **TINY))
        for i in range(120):
            h.load(0, 0x10000 + i * 64, 5)
        with pytest.raises(MisspeculationError):
            h.store(1, 0x10000, 2, 1)   # older store to a spilled read

    def test_table_retrieval_charges_memory_latency(self):
        h = MemoryHierarchy(HierarchyConfig(unbounded_sets=True, **TINY))
        for i in range(120):
            h.store(0, 0x10000 + i * 64, 1, i)
        result = h.load(1, 0x10000, 1)
        assert result.latency > h.config.memory_latency

    def test_workload_runs_on_tiny_caches_with_unbounded_sets(self):
        config = MachineConfig(num_cores=4, l1_size=4 * 1024, l1_assoc=4,
                               l2_size=32 * 1024, l2_assoc=8,
                               unbounded_sets=True)
        workload = LinkedListWorkload(nodes=24)
        result = run_ps_dswp(workload, config)
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)
        assert result.system.stats.aborted == 0


class TestDirectory:
    def fresh(self, **kw):
        return DirectoryHierarchy(DirectoryConfig(num_cores=4, **kw))

    def test_functionally_equivalent_to_snoopy(self):
        """Same protocol, different interconnect: identical outcomes."""
        snoopy = MemoryHierarchy(HierarchyConfig(num_cores=4))
        direct = self.fresh()
        ops = [("s", 0, 0x1000, 1, 11), ("s", 1, 0x1040, 2, 22),
               ("l", 2, 0x1000, 3, None), ("s", 2, 0x1000, 3, 33),
               ("l", 3, 0x1040, 4, None)]
        for h in (snoopy, direct):
            for kind, core, addr, vid, value in ops:
                if kind == "s":
                    h.store(core, addr, vid, value)
                else:
                    h.load(core, addr, vid)
            for vid in (1, 2, 3, 4):
                h.commit(vid)
        for addr in (0x1000, 0x1040):
            assert snoopy.load(0, addr, 0).value == direct.load(0, addr, 0).value

    def test_sharer_map_superset_invariant(self):
        h = self.fresh()
        h.store(0, 0x2000, 1, 1)
        h.load(1, 0x2000, 2)
        h.load(2, 0x2000, 3)
        h.check_directory_invariant()
        assert {"L1[0]", "L1[1]", "L1[2]"} <= h.sharers_of(0x2000)

    def test_stale_entries_cleaned_on_probe(self):
        h = self.fresh()
        h.load(0, 0x2000, 0)
        h.store(1, 0x2000, 0, 9)     # invalidates core 0's copy
        # Core 0 may linger in the map (lazy removal)...
        h.store(1, 0x2040, 0, 1)
        h.load(2, 0x2000, 0)         # probe sweeps stale entries
        h.check_directory_invariant()

    def test_misses_to_different_banks_overlap(self):
        h = self.fresh()
        lat0 = h.load(0, 0x8000, 0, now=0).latency
        lat1 = h.load(1, 0x8040, 0, now=0).latency   # different bank
        assert abs(lat0 - lat1) <= h.dconfig.bank_occupancy

    def test_same_bank_misses_serialise(self):
        h = self.fresh(directory_banks=1)
        h.load(0, 0x8000, 0, now=0)
        lat1 = h.load(1, 0x9000, 0, now=0).latency
        assert h.dir_stats.bank_wait_cycles > 0
        assert lat1 > h.dconfig.directory_latency + h.config.memory_latency

    def test_probe_count_tracks_sharers_not_cores(self):
        h = DirectoryHierarchy(DirectoryConfig(num_cores=16))
        h.store(0, 0x2000, 1, 1)
        before = h.dir_stats.probes_sent
        h.load(1, 0x2000, 1)
        # Only the single recorded sharer is probed, not all 15 peers.
        assert h.dir_stats.probes_sent - before <= 2

    def test_conflict_detection_unchanged(self):
        h = self.fresh()
        h.load(0, 0x2000, 5)
        with pytest.raises(MisspeculationError):
            h.store(1, 0x2000, 2, 1)

    def test_machine_config_wiring(self):
        system = HMTXSystem(MachineConfig(num_cores=4, coherence="directory"))
        assert isinstance(system.hierarchy, DirectoryHierarchy)

    def test_unknown_coherence_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(coherence="telepathy").hierarchy_config()

    def test_workload_correct_on_directory(self):
        config = MachineConfig(num_cores=4, coherence="directory")
        workload = LinkedListWorkload(nodes=32)
        result = run_ps_dswp(workload, config)
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)
        assert result.system.stats.aborted == 0
        result.system.hierarchy.check_directory_invariant()

    def test_directory_scales_better_than_snoopy(self):
        """The section 8 motivation, measured at 16 cores."""
        speedups = {}
        for coherence in ("snoopy", "directory"):
            seq = run_sequential(LinkedListWorkload(nodes=48, work_cycles=700))
            workload = LinkedListWorkload(nodes=48, work_cycles=700)
            par = run_ps_dswp(workload,
                              MachineConfig(num_cores=16, coherence=coherence),
                              stage2_workers=14)
            speedups[coherence] = seq.cycles / par.cycles
        assert speedups["directory"] > speedups["snoopy"]
