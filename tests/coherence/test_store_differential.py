"""Differential test: object-per-line cache vs the struct-of-arrays arena.

The DESIGN.md section 13 rewrite replaced ``CacheLine`` objects with slot
columns in a :class:`~repro.coherence.store.LineStore`.  The rewrite is
supposed to be *behaviour-invariant*: every observable — resident lines
(state, VIDs, data, lazy stamps, LRU ticks), eviction records, lookup
results, stats counters, the Figure 9 footprint bytes — must be identical
to the seed implementation for any operation sequence.

This module keeps the seed implementation alive as an oracle
(:mod:`tests.coherence.legacy_store`) and drives both through:

* randomized seeded sequences of install / lookup / versions / drop /
  commit / abort / VID-reset operations, comparing full snapshots after
  every single step; and
* a hypothesis property for the VID-reset scrub specifically (random
  resident populations and broadcast histories, scrubbed in one go).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.cache import VersionedCache
from repro.coherence.line import CacheLine
from repro.coherence.states import State

from .legacy_store import LegacyVersionedCache

#: Ten line bases over four sets: enough aliasing for constant evictions.
POOL = [0x4000 + i * 64 for i in range(10)]

#: 4 sets x 2 ways keeps both caches under perpetual replacement pressure.
GEOMETRY = dict(size=4 * 2 * 64, assoc=2, line_size=64)

#: Everything installable; INVALID lines never arrive via install().
INSTALLABLE = [s for s in State if s is not State.INVALID]


def make_pair():
    legacy = LegacyVersionedCache("legacy", **GEOMETRY)
    soa = VersionedCache("soa", **GEOMETRY)
    return legacy, soa


def canon(line):
    """Canonical tuple of every field the protocol can observe."""
    return (line.addr, line.state.name, line.mod_vid, line.high_vid,
            tuple(line.data), line.seen_aborts, line.lru_tick, line.epoch)


def snapshot(cache):
    """Full observable state, comparable across the two implementations."""
    return {
        "lines": sorted(canon(line) for line in cache.all_lines()),
        "stats": cache.stats,
        "lc_vid": cache.lc_vid,
        "abort_history": list(cache._abort_history),
        "occupancy": cache.occupancy(),
        "footprint_bytes": cache.speculative_lines * cache.line_size,
    }


def random_install(rng, addr):
    state = rng.choice(INSTALLABLE)
    if state.speculative:
        mod = rng.randint(0, 5)
        high = rng.choice([0, mod, mod + rng.randint(1, 3)])
    else:
        mod = high = 0
    data = [rng.randint(0, 99) for _ in range(4)]
    return ("install", addr, state, mod, high, tuple(data))


def op_stream(seed, length=300):
    """A seeded random mix of every public cache operation."""
    rng = random.Random(seed)
    commit_level = 0
    ops = []
    for _ in range(length):
        r = rng.random()
        addr = rng.choice(POOL)
        if r < 0.40:
            ops.append(random_install(rng, addr))
        elif r < 0.62:
            ops.append(("lookup", addr, rng.randint(0, 8)))
        elif r < 0.72:
            ops.append(("versions", addr))
        elif r < 0.78:
            ops.append(("has_latest_spec", addr))
        elif r < 0.84:
            ops.append(("drop_hit", addr, rng.randint(0, 8)))
        elif r < 0.91:
            commit_level += 1
            ops.append(("commit", commit_level))
        elif r < 0.97:
            ops.append(("abort",))
        else:
            commit_level = 0
            ops.append(("reset",))
    return ops


def apply_op(cache, op):
    """Run one op; return its canonicalized observable result."""
    kind = op[0]
    if kind == "install":
        _, addr, state, mod, high, data = op
        evicted = cache.install(CacheLine(addr, state, list(data), mod, high))
        return [canon(line) for line in evicted]
    if kind == "lookup":
        hit = cache.lookup(op[1], op[2])
        return None if hit is None else canon(hit)
    if kind == "versions":
        return [canon(line) for line in cache.versions(op[1])]
    if kind == "has_latest_spec":
        return cache.has_latest_spec_version(op[1])
    if kind == "drop_hit":
        hit = cache.lookup(op[1], op[2])
        if hit is None:
            return None
        cache.drop(hit)
        return canon(hit)
    if kind == "commit":
        return cache.broadcast_commit(op[1])
    if kind == "abort":
        return cache.broadcast_abort()
    if kind == "reset":
        return cache.vid_reset()
    raise ValueError(op)


def run_op(cache, op):
    """Result of an op, with the two-versions-hit assertion reified.

    Random VID soups can legitimately make two versions hit one request;
    both implementations must refuse identically, so the AssertionError
    becomes a comparable result instead of a test failure.
    """
    try:
        return ("ok", apply_op(cache, op))
    except AssertionError:
        return ("two-version-hit", None)


class TestRandomizedDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_lockstep_sequences(self, seed):
        legacy, soa = make_pair()
        for step, op in enumerate(op_stream(seed)):
            assert run_op(legacy, op) == run_op(soa, op), (seed, step, op)
            assert snapshot(legacy) == snapshot(soa), (seed, step, op)
            legacy.check_index_integrity()
            soa.check_index_integrity()

    def test_sequences_exercise_every_operation(self):
        kinds = {op[0] for seed in range(8) for op in op_stream(seed)}
        assert kinds == {"install", "lookup", "versions", "has_latest_spec",
                         "drop_hit", "commit", "abort", "reset"}

    @pytest.mark.parametrize("seed", [0, 3])
    def test_evictions_and_scrubs_actually_happen(self, seed):
        """The geometry is tight enough that the stream hits the hard paths."""
        _, soa = make_pair()
        for op in op_stream(seed):
            run_op(soa, op)
        assert soa.stats.evictions > 0
        assert soa.stats.vid_resets > 0
        assert soa.stats.lazy_commits_processed > 0
        assert soa.stats.lazy_aborts_processed > 0


line_specs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=len(POOL) - 1),
              st.sampled_from(INSTALLABLE),
              st.integers(min_value=0, max_value=5),
              st.integers(min_value=0, max_value=4)),
    max_size=24)

broadcast_events = st.lists(
    st.one_of(st.integers(min_value=1, max_value=8),   # commit to this VID
              st.just("abort")),
    max_size=12)


class TestVidResetScrubProperty:
    @given(specs=line_specs, events=broadcast_events)
    @settings(deadline=None, max_examples=60)
    def test_scrub_equivalence(self, specs, events):
        """VID reset scrubs both stores to identical, spec-free states."""
        legacy, soa = make_pair()
        for i, (ai, state, mod, extra) in enumerate(specs):
            if state.speculative:
                vids = (mod, mod + extra if extra else 0)
            else:
                vids = (0, 0)
            for cache in (legacy, soa):
                cache.install(CacheLine(POOL[ai], state, [i] * 4, *vids))
        for event in events:
            for cache in (legacy, soa):
                if event == "abort":
                    cache.broadcast_abort()
                else:
                    cache.broadcast_commit(event)
        legacy.vid_reset()
        soa.vid_reset()
        assert snapshot(legacy) == snapshot(soa)
        # The scrub's own contract: no speculative version survives a
        # VID reset, and the abort history is wiped with LC_VID.
        assert soa.speculative_lines == 0
        assert soa.lc_vid == 0 and not soa._abort_history
        legacy.check_index_integrity()
        soa.check_index_integrity()
