"""Integration tests of the full memory system.

Covers the section 4.3 dependence cases, the two MTX requirements (group
commit, uncommitted value forwarding), cross-cache behaviour, the section
5.4 overflow rules, and shared-bus contention accounting.
"""

import pytest

from repro.coherence import HierarchyConfig, MemoryHierarchy, State
from repro.errors import MisspeculationError, SpeculativeOverflowError

ADDR = 0x4000


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(HierarchyConfig(num_cores=4))


@pytest.fixture
def tiny():
    """Tiny caches so eviction paths trigger quickly."""
    return MemoryHierarchy(HierarchyConfig(
        num_cores=2, l1_size=2 * 64, l1_assoc=2,
        l2_size=8 * 64, l2_assoc=4))


def states_of(h, addr):
    return sorted((c, str(l.state), l.mod_vid, l.high_vid)
                  for c, l in h.versions_everywhere(addr))


# ----------------------------------------------------------------------
# Basic MOESI behaviour (VID 0 everywhere)
# ----------------------------------------------------------------------

class TestNonSpeculativeMoesi:
    def test_read_miss_installs_exclusive(self, hierarchy):
        hierarchy.memory.write_word(ADDR, 7)
        result = hierarchy.load(0, ADDR, 0)
        assert result.value == 7
        assert not result.l1_hit
        assert states_of(hierarchy, ADDR) == [("L1[0]", "E", 0, 0)]

    def test_second_read_hits(self, hierarchy):
        hierarchy.load(0, ADDR, 0)
        assert hierarchy.load(0, ADDR, 0).l1_hit

    def test_write_makes_modified(self, hierarchy):
        hierarchy.store(0, ADDR, 0, 9)
        assert states_of(hierarchy, ADDR) == [("L1[0]", "M", 0, 0)]
        assert hierarchy.load(0, ADDR, 0).value == 9

    def test_read_sharing_across_cores(self, hierarchy):
        hierarchy.store(0, ADDR, 0, 9)
        assert hierarchy.load(1, ADDR, 0).value == 9
        states = dict((c, s) for c, s, _, _ in states_of(hierarchy, ADDR))
        assert states["L1[0]"] == "O"   # dirty owner
        assert states["L1[1]"] == "S"

    def test_write_invalidates_sharers(self, hierarchy):
        hierarchy.store(0, ADDR, 0, 1)
        hierarchy.load(1, ADDR, 0)
        hierarchy.store(1, ADDR, 0, 2)
        names = [c for c, _, _, _ in states_of(hierarchy, ADDR)]
        assert names == ["L1[1]"]
        assert hierarchy.load(0, ADDR, 0).value == 2

    def test_write_upgrade_from_shared(self, hierarchy):
        hierarchy.memory.write_word(ADDR, 5)
        hierarchy.load(0, ADDR, 0)
        hierarchy.load(1, ADDR, 0)
        hierarchy.store(0, ADDR, 0, 6)
        assert hierarchy.load(1, ADDR, 0).value == 6


# ----------------------------------------------------------------------
# The two MTX requirements (section 3)
# ----------------------------------------------------------------------

class TestUncommittedValueForwarding:
    def test_forwarding_within_same_vid_across_cores(self, hierarchy):
        """A later pipeline stage sees the same transaction's uncommitted
        store from another core — requirement 2."""
        hierarchy.store(0, ADDR, 3, 111)
        assert hierarchy.load(1, ADDR, 3).value == 111

    def test_forwarding_to_later_vids(self, hierarchy):
        hierarchy.store(0, ADDR, 3, 111)
        assert hierarchy.load(1, ADDR, 7).value == 111

    def test_earlier_vids_see_older_version(self, hierarchy):
        hierarchy.memory.write_word(ADDR, 50)
        hierarchy.store(0, ADDR, 3, 111)
        assert hierarchy.load(1, ADDR, 2).value == 50
        assert hierarchy.load(2, ADDR, 0).value == 50

    def test_three_versions_three_readers(self, hierarchy):
        hierarchy.memory.write_word(ADDR, 1)
        hierarchy.store(0, ADDR, 2, 2)
        hierarchy.store(1, ADDR, 4, 3)
        assert hierarchy.load(2, ADDR, 1).value == 1
        assert hierarchy.load(2, ADDR, 3).value == 2
        assert hierarchy.load(3, ADDR, 9).value == 3


class TestGroupCommit:
    def test_commit_publishes_across_caches(self, hierarchy):
        """Stores by two different cores under one VID commit atomically —
        requirement 1."""
        hierarchy.store(0, ADDR, 1, 10)
        hierarchy.store(1, ADDR + 64, 1, 20)
        hierarchy.commit(1)
        assert hierarchy.load(2, ADDR, 0).value == 10
        assert hierarchy.load(3, ADDR + 64, 0).value == 20

    def test_uncommitted_stores_invisible_to_nonspec(self, hierarchy):
        hierarchy.memory.write_word(ADDR, 5)
        hierarchy.store(0, ADDR, 1, 99)
        assert hierarchy.load(1, ADDR, 0).value == 5

    def test_commit_preserves_later_speculation(self, hierarchy):
        hierarchy.store(0, ADDR, 1, 10)
        hierarchy.store(0, ADDR, 2, 20)
        hierarchy.commit(1)
        assert hierarchy.load(1, ADDR, 0).value == 10
        assert hierarchy.load(1, ADDR, 2).value == 20
        hierarchy.commit(2)
        assert hierarchy.load(1, ADDR, 0).value == 20

    def test_abort_discards_all_uncommitted(self, hierarchy):
        hierarchy.memory.write_word(ADDR, 5)
        hierarchy.store(0, ADDR, 1, 10)
        hierarchy.store(1, ADDR, 2, 20)
        hierarchy.abort()
        assert hierarchy.load(2, ADDR, 0).value == 5

    def test_abort_preserves_committed(self, hierarchy):
        hierarchy.store(0, ADDR, 1, 10)
        hierarchy.commit(1)
        hierarchy.store(1, ADDR, 2, 20)
        hierarchy.abort()
        assert hierarchy.load(2, ADDR, 0).value == 10


# ----------------------------------------------------------------------
# Dependence enforcement (section 4.3)
# ----------------------------------------------------------------------

class TestFlowDependences:
    def test_store_then_load_forwards(self, hierarchy):
        hierarchy.store(0, ADDR, 2, 42)       # s_x first
        assert hierarchy.load(1, ADDR, 5).value == 42  # l_y sees it

    def test_load_then_earlier_store_aborts(self, hierarchy):
        hierarchy.load(0, ADDR, 5)            # l_y first
        with pytest.raises(MisspeculationError):
            hierarchy.store(1, ADDR, 2, 42)   # s_x too late


class TestAntiDependences:
    def test_load_then_later_store_is_safe(self, hierarchy):
        hierarchy.memory.write_word(ADDR, 5)
        hierarchy.load(0, ADDR, 2)            # l_x first
        hierarchy.store(1, ADDR, 5, 99)       # s_y creates new version
        assert hierarchy.load(0, ADDR, 2).value == 5   # x still sees old

    def test_later_store_then_load_avoids_false_abort(self, hierarchy):
        hierarchy.memory.write_word(ADDR, 5)
        hierarchy.store(1, ADDR, 5, 99)       # s_y first
        assert hierarchy.load(0, ADDR, 2).value == 5   # l_x hits backup


class TestOutputDependences:
    def test_in_order_stores_stack_versions(self, hierarchy):
        hierarchy.store(0, ADDR, 2, 22)
        hierarchy.store(0, ADDR, 5, 55)
        assert hierarchy.load(1, ADDR, 2).value == 22
        assert hierarchy.load(1, ADDR, 5).value == 55

    def test_out_of_order_stores_abort(self, hierarchy):
        hierarchy.store(0, ADDR, 5, 55)
        with pytest.raises(MisspeculationError):
            hierarchy.store(1, ADDR, 2, 22)

    def test_same_vid_rewrites_in_place(self, hierarchy):
        hierarchy.store(0, ADDR, 3, 1)
        hierarchy.store(0, ADDR, 3, 2)
        assert hierarchy.load(0, ADDR, 3).value == 2
        versions = [l for _, l in hierarchy.versions_everywhere(ADDR)
                    if l.state is State.SM]
        assert len(versions) == 1


class TestSameVidAcrossCores:
    def test_write_migrates_version(self, hierarchy):
        """Same transaction writing from another core migrates the S-M line
        (threads may move between cores, section 5.2)."""
        hierarchy.store(0, ADDR, 3, 1)
        hierarchy.store(1, ADDR, 3, 2)
        assert hierarchy.load(2, ADDR, 3).value == 2
        hierarchy.check_invariants()

    def test_nonspec_write_to_spec_line_aborts(self, hierarchy):
        hierarchy.store(0, ADDR, 3, 1)
        with pytest.raises(MisspeculationError):
            hierarchy.store(1, ADDR, 0, 7)


# ----------------------------------------------------------------------
# S-S copies
# ----------------------------------------------------------------------

class TestSharedSpeculativeCopies:
    def test_peer_read_installs_ss(self, hierarchy):
        hierarchy.store(0, ADDR, 2, 9)
        hierarchy.load(1, ADDR, 2)
        states = dict((c, s) for c, s, *_ in states_of(hierarchy, ADDR)
                      if c == "L1[1]")
        assert states["L1[1]"] == "S-S"

    def test_ss_copy_serves_repeat_reads_locally(self, hierarchy):
        hierarchy.store(0, ADDR, 2, 9)
        hierarchy.load(1, ADDR, 2)
        assert hierarchy.load(1, ADDR, 2).l1_hit

    def test_write_invalidates_stale_ss_copies(self, hierarchy):
        """An S-S copy must never serve its version's pre-write data."""
        hierarchy.store(0, ADDR, 2, 9)
        hierarchy.load(1, ADDR, 2)            # S-S(2,...) in L1[1]
        hierarchy.store(0, ADDR, 2, 10)       # in-place write by VID 2
        assert hierarchy.load(1, ADDR, 2).value == 10

    def test_ss_never_serves_writes(self, hierarchy):
        hierarchy.store(0, ADDR, 2, 9)
        hierarchy.load(1, ADDR, 4)            # S-S copy in L1[1]
        hierarchy.store(1, ADDR, 4, 11)       # must reach the owner
        assert hierarchy.load(2, ADDR, 4).value == 11
        hierarchy.check_invariants()


# ----------------------------------------------------------------------
# Overflow handling (section 5.4)
# ----------------------------------------------------------------------

class TestOverflow:
    def test_nonspec_backup_may_overflow_and_return(self, tiny):
        """S-O(0, h) may leave the hierarchy; a later old-VID read gets it
        back from memory as S-O(0, reqVID+1) via the S-M assertion."""
        tiny.memory.write_word(ADDR, 5)
        tiny.load(0, ADDR, 1)                 # mark (0,1)
        tiny.store(0, ADDR, 2, 99)            # backup S-O(0,2) + S-M(2,2)
        # Evict the backup all the way to memory by filling both levels
        # with same-set speculative lines of *other* addresses.
        set_stride = 2 * 64                   # tiny L1: 2 sets
        victims = 0
        addr = ADDR
        while tiny.stats.nonspec_overflows == 0 and victims < 64:
            addr += set_stride * 2            # keep set pressure on ADDR's set
            tiny.store(0, ADDR + 0x10000 + victims * set_stride * 4, 2, victims)
            victims += 1
        assert tiny.stats.nonspec_overflows > 0
        # An old-VID read must still find version-0 data.
        result = tiny.load(1, ADDR, 1)
        assert result.value == 5
        assert tiny.stats.overflow_retrievals > 0

    def test_speculative_line_eviction_past_llc_aborts(self, tiny):
        with pytest.raises(SpeculativeOverflowError):
            for i in range(200):
                tiny.store(0, 0x10000 + i * 64, 2, i)

    def test_abort_flushes_so_system_recovers(self, tiny):
        try:
            for i in range(200):
                tiny.store(0, 0x10000 + i * 64, 2, i)
        except SpeculativeOverflowError:
            tiny.abort()
        # After the flush, plain execution works again.
        tiny.store(0, ADDR, 0, 7)
        assert tiny.load(1, ADDR, 0).value == 7


# ----------------------------------------------------------------------
# Bus contention + invariants
# ----------------------------------------------------------------------

class TestBusContention:
    def test_sequential_misses_do_not_wait(self, hierarchy):
        now = 0
        for i in range(10):
            result = hierarchy.load(0, 0x8000 + i * 64, 0, now=now)
            now += result.latency
        assert hierarchy.stats.bus_wait_cycles == 0

    def test_simultaneous_misses_serialise(self, hierarchy):
        lat0 = hierarchy.load(0, 0x8000, 0, now=0).latency
        lat1 = hierarchy.load(1, 0x9000, 0, now=0).latency
        assert lat1 > lat0 - hierarchy.config.bus_occupancy
        assert hierarchy.stats.bus_wait_cycles > 0


class TestInvariants:
    def test_single_latest_version_globally(self, hierarchy):
        hierarchy.store(0, ADDR, 1, 1)
        hierarchy.store(1, ADDR, 2, 2)
        hierarchy.store(2, ADDR, 3, 3)
        hierarchy.load(3, ADDR, 3)
        hierarchy.check_invariants()

    def test_commit_latency_is_constant(self, hierarchy):
        """Lazy scheme: commit cost must not scale with lines touched."""
        for i in range(50):
            hierarchy.store(0, 0x8000 + i * 64, 1, i)
        assert hierarchy.commit(1) == hierarchy.config.broadcast_latency
