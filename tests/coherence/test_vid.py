"""Tests for VID allocation, exhaustion, reset, and the comparator model."""

import pytest
from hypothesis import given, strategies as st

from repro.coherence.vid import (
    DEFAULT_VID_BITS,
    NONSPECULATIVE_VID,
    CascadedComparator,
    VidExhaustedError,
    VidSpace,
)


class TestVidSpace:
    def test_nonspeculative_vid_is_zero(self):
        assert NONSPECULATIVE_VID == 0

    def test_default_is_six_bits(self):
        assert DEFAULT_VID_BITS == 6
        assert VidSpace().max_vid == 63

    def test_allocation_starts_at_one(self):
        space = VidSpace()
        assert space.allocate() == 1

    def test_allocation_is_sequential_program_order(self):
        space = VidSpace(bits=4)
        assert [space.allocate() for _ in range(5)] == [1, 2, 3, 4, 5]

    def test_max_vid_for_small_space(self):
        assert VidSpace(bits=2).max_vid == 3

    def test_exhaustion_raises(self):
        space = VidSpace(bits=2)
        for _ in range(3):
            space.allocate()
        assert space.exhausted()
        with pytest.raises(VidExhaustedError):
            space.allocate()

    def test_reset_recycles_from_one(self):
        space = VidSpace(bits=2)
        for _ in range(3):
            space.allocate()
        space.reset()
        assert not space.exhausted()
        assert space.allocate() == 1
        assert space.resets == 1

    def test_allocated_total_spans_resets(self):
        space = VidSpace(bits=2)
        for _ in range(3):
            space.allocate()
        space.reset()
        space.allocate()
        assert space.allocated_total == 4

    def test_rewind_for_abort_recovery(self):
        space = VidSpace()
        for _ in range(10):
            space.allocate()
        space.rewind(4)  # transactions 4..10 aborted, 3 committed
        assert space.allocate() == 4

    def test_rewind_out_of_range(self):
        with pytest.raises(ValueError):
            VidSpace(bits=3).rewind(100)

    def test_zero_bits_rejected(self):
        with pytest.raises(ValueError):
            VidSpace(bits=0)

    @given(st.integers(min_value=1, max_value=10))
    def test_exactly_2_to_m_minus_1_vids_per_epoch(self, bits):
        space = VidSpace(bits=bits)
        count = 0
        while not space.exhausted():
            space.allocate()
            count += 1
        assert count == 2 ** bits - 1


class TestCascadedComparator:
    def test_compare_semantics(self):
        comp = CascadedComparator()
        assert comp.compare(3, 5) < 0
        assert comp.compare(5, 5) == 0
        assert comp.compare(9, 2) > 0

    def test_nearby_vids_use_fast_path(self):
        comp = CascadedComparator(bits=6, low_bits=3)
        comp.compare(1, 2)   # same high bits (both 0b000_xxx)
        assert comp.fast_comparisons == 1
        assert comp.cascaded_comparisons == 0

    def test_distant_vids_cascade(self):
        comp = CascadedComparator(bits=6, low_bits=3)
        comp.compare(1, 60)  # high bits differ
        assert comp.cascaded_comparisons == 1

    def test_cascade_fraction(self):
        comp = CascadedComparator(bits=6, low_bits=3)
        comp.compare(1, 2)
        comp.compare(1, 60)
        assert comp.cascade_fraction == pytest.approx(0.5)

    def test_cascade_fraction_empty(self):
        assert CascadedComparator().cascade_fraction == 0.0

    def test_invalid_low_bits(self):
        with pytest.raises(ValueError):
            CascadedComparator(bits=4, low_bits=5)

    @given(st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=63))
    def test_result_matches_plain_comparison(self, a, b):
        comp = CascadedComparator()
        assert comp.compare(a, b) == (a > b) - (a < b)

    def test_consecutive_vid_stream_rarely_cascades(self):
        """Section 4.5's premise: in-use VIDs are close to each other."""
        comp = CascadedComparator(bits=6, low_bits=3)
        for vid in range(1, 60):
            comp.compare(vid, vid + 1)
        assert comp.cascade_fraction < 0.2
