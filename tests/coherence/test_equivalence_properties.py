"""Equivalence properties between implementation variants.

1. **Lazy == eager**: deferring commit/abort processing to the next touch
   (section 5.3) must be observationally equivalent to processing every
   line immediately at each broadcast.
2. **Snoopy == directory**: the interconnect organisation changes timing
   and message counts, never values, conflicts, or committed state.

Both are checked on random operation sequences with interleaved commits
and aborts.
"""

from dataclasses import dataclass
from typing import List, Optional

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence import HierarchyConfig, MemoryHierarchy
from repro.coherence.directory import DirectoryConfig, DirectoryHierarchy
from repro.errors import MisspeculationError

POOL = [0x2000 + i * 64 for i in range(4)]
SMALL = dict(l1_size=16 * 64, l1_assoc=4, l2_size=128 * 64, l2_assoc=8)


@dataclass(frozen=True)
class Op:
    kind: str          # "load" | "store" | "commit" | "abort"
    core: int = 0
    addr: int = 0
    vid: int = 0
    value: int = 0


def op_sequence():
    """Random op streams with in-order commits woven in."""

    @st.composite
    def build(draw):
        ops: List[Op] = []
        next_commit = 1
        highest_begun = 0
        for _ in range(draw(st.integers(min_value=1, max_value=14))):
            choice = draw(st.integers(min_value=0, max_value=9))
            core = draw(st.integers(min_value=0, max_value=2))
            addr = draw(st.sampled_from(POOL))
            if choice <= 3:
                vid = draw(st.integers(min_value=next_commit,
                                       max_value=next_commit + 3))
                highest_begun = max(highest_begun, vid)
                ops.append(Op("load", core, addr, vid))
            elif choice <= 7:
                vid = draw(st.integers(min_value=next_commit,
                                       max_value=next_commit + 3))
                highest_begun = max(highest_begun, vid)
                ops.append(Op("store", core, addr, vid,
                              draw(st.integers(min_value=1, max_value=999))))
            elif choice == 8 and next_commit <= highest_begun:
                ops.append(Op("commit", vid=next_commit))
                next_commit += 1
            else:
                ops.append(Op("abort"))
        return ops

    return build()


def run_ops(hierarchy, ops: List[Op], eager: bool = False) -> List[Optional[int]]:
    """Execute ops; returns observed values (None for non-loads/conflicts).

    After an abort (explicit or conflict-triggered) the uncommitted VIDs
    restart; for simplicity the stream just continues — both systems under
    comparison see the identical stream either way.
    """
    observed: List[Optional[int]] = []
    committed_through = 0
    for op in ops:
        if op.kind == "commit":
            if op.vid == committed_through + 1:
                hierarchy.commit(op.vid)
                committed_through = op.vid
            observed.append(None)
        elif op.kind == "abort":
            hierarchy.abort()
            observed.append(None)
        else:
            try:
                if op.kind == "load":
                    observed.append(hierarchy.load(op.core, op.addr, op.vid).value)
                else:
                    hierarchy.store(op.core, op.addr, op.vid, op.value)
                    observed.append(-1)
            except MisspeculationError:
                hierarchy.abort()
                observed.append(-2)     # conflict marker
        if eager:
            for cache in hierarchy._all_caches():
                for line in list(cache.all_lines()):
                    cache.process_lazy(line)
    return observed


def final_state(hierarchy):
    return {addr: hierarchy.load(0, addr, 0).value for addr in POOL}


@settings(max_examples=120, deadline=None)
@given(ops=op_sequence())
def test_lazy_equals_eager(ops):
    lazy = MemoryHierarchy(HierarchyConfig(num_cores=3, **SMALL))
    eager = MemoryHierarchy(HierarchyConfig(num_cores=3, **SMALL))
    lazy_observed = run_ops(lazy, ops, eager=False)
    eager_observed = run_ops(eager, ops, eager=True)
    assert lazy_observed == eager_observed
    assert final_state(lazy) == final_state(eager)


@settings(max_examples=120, deadline=None)
@given(ops=op_sequence())
def test_snoopy_equals_directory(ops):
    snoopy = MemoryHierarchy(HierarchyConfig(num_cores=3, **SMALL))
    directory = DirectoryHierarchy(DirectoryConfig(num_cores=3, **SMALL))
    assert run_ops(snoopy, ops) == run_ops(directory, ops)
    assert final_state(snoopy) == final_state(directory)
    directory.check_directory_invariant()


@settings(max_examples=60, deadline=None)
@given(ops=op_sequence())
def test_unbounded_sets_preserve_values(ops):
    """The overflow table changes *where* versions live, never what a VID
    observes (on caches so tiny that spills are routine)."""
    tiny = dict(l1_size=2 * 64, l1_assoc=2, l2_size=4 * 64, l2_assoc=4)
    reference = MemoryHierarchy(HierarchyConfig(num_cores=3, **SMALL))
    spilling = MemoryHierarchy(HierarchyConfig(num_cores=3,
                                               unbounded_sets=True, **tiny))
    assert run_ops(reference, ops) == run_ops(spilling, ops)
    assert final_state(reference) == final_state(spilling)
