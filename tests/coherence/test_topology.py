"""Unit tests for the topology-aware machine model.

Covers the :mod:`repro.topology` spec itself (shape math, placement,
latency formulas), its projection through :class:`MachineConfig` into the
sliced-LLC hierarchy and per-socket directory banks, the PR's satellite
fixes (the directory-knob round-trip), the extended structural
invariants, and the ``modelcheck-structure`` mutation harness.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.modelcheck import check_topology_structure
from repro.coherence.directory import DirectoryConfig, DirectoryHierarchy
from repro.coherence.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.core.config import MachineConfig
from repro.topology import (
    TOPOLOGY_PRESETS,
    TopologySpec,
    place_core,
    placement_map,
    preset_names,
    topology_preset,
)

TWO_SOCKET = TopologySpec(sockets=2, cores_per_socket=4)


def two_socket_config(**overrides) -> DirectoryConfig:
    kwargs = dict(num_cores=8, topology=TWO_SOCKET)
    kwargs.update(overrides)
    return DirectoryConfig(**kwargs)


# ----------------------------------------------------------------------
# TopologySpec shape and validation
# ----------------------------------------------------------------------

class TestTopologySpec:
    def test_shape_and_flatness(self):
        spec = TopologySpec(sockets=4, cores_per_socket=64)
        assert spec.num_cores == 256
        assert not spec.flat
        assert TopologySpec(sockets=1, cores_per_socket=4).flat

    @pytest.mark.parametrize("kwargs", [
        dict(sockets=0),
        dict(cores_per_socket=0),
        dict(intra_hop_latency=-1),
        dict(home_interleave="page"),
        dict(llc_slice_size=0),
    ])
    def test_validation_rejects_bad_shapes(self, kwargs):
        with pytest.raises(ValueError):
            TopologySpec(**kwargs)

    def test_socket_core_mapping_is_socket_major(self):
        spec = TopologySpec(sockets=2, cores_per_socket=32)
        assert spec.socket_of_core(0) == 0
        assert spec.socket_of_core(31) == 0
        assert spec.socket_of_core(32) == 1
        assert spec.cores_of_socket(1) == range(32, 64)

    def test_home_socket_line_interleaves(self):
        spec = TopologySpec(sockets=4, cores_per_socket=4)
        homes = [spec.home_socket(line * 64, 64) for line in range(8)]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]
        # Same line, any byte: same home.
        assert spec.home_socket(64 + 63, 64) == spec.home_socket(64, 64)

    def test_flat_spec_homes_everything_at_zero(self):
        spec = TopologySpec(sockets=1, cores_per_socket=8)
        assert all(spec.home_socket(a, 64) == 0 for a in range(0, 2048, 64))

    def test_hop_latency_intra_vs_cross(self):
        spec = TWO_SOCKET
        assert spec.hop_latency(0, 0) == spec.intra_hop_latency
        assert spec.hop_latency(0, 1) == spec.cross_hop_latency
        assert spec.hop_latency(1, 0) == spec.hop_latency(0, 1)

    def test_multicast_latency_flat_has_no_cross_term(self):
        flat = TopologySpec(sockets=1, cores_per_socket=4)
        assert flat.multicast_latency(25) == \
            25 + math.ceil(math.log2(5)) * flat.intra_hop_latency

    def test_multicast_and_reset_costs_grow_with_sockets(self):
        two = TopologySpec(sockets=2, cores_per_socket=32)
        four = TopologySpec(sockets=4, cores_per_socket=32)
        assert four.multicast_latency(25) > two.multicast_latency(25)
        assert four.reset_scrub_latency(25, 40) > \
            two.reset_scrub_latency(25, 40)
        # The scrub barrier is linear in sockets: one slice walk each.
        assert (four.reset_scrub_latency(25, 40)
                - four.multicast_latency(25)) - \
               (two.reset_scrub_latency(25, 40)
                - two.multicast_latency(25)) == 2 * 40

    def test_reset_scrub_flat_is_base(self):
        assert TopologySpec(sockets=1, cores_per_socket=4) \
            .reset_scrub_latency(25, 40) == 25

    def test_presets(self):
        assert set(preset_names()) == set(TOPOLOGY_PRESETS)
        assert topology_preset("table2").num_cores == 4
        assert topology_preset("table2").flat
        assert topology_preset("2s64c").num_cores == 64
        assert topology_preset("4s128c").sockets == 4
        assert topology_preset("4s256c").num_cores == 256
        with pytest.raises(KeyError):
            topology_preset("8s1024c")


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------

class TestPlacement:
    def test_pack_is_the_historical_mapping(self):
        for index in range(20):
            assert place_core(index, 8, TWO_SOCKET, "pack") == index % 8
            assert place_core(index, 8, None, "spread") == index % 8

    def test_spread_round_robins_sockets_first(self):
        assert placement_map(8, 8, TWO_SOCKET, "spread") == \
            [0, 4, 1, 5, 2, 6, 3, 7]

    def test_spread_is_a_permutation(self):
        spec = TopologySpec(sockets=4, cores_per_socket=8)
        assert sorted(placement_map(32, 32, spec, "spread")) == list(range(32))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            place_core(0, 8, TWO_SOCKET, "hash")


# ----------------------------------------------------------------------
# MachineConfig projection (incl. satellite S1: directory-knob round-trip)
# ----------------------------------------------------------------------

class TestMachineConfig:
    def test_topology_core_count_must_match(self):
        with pytest.raises(ValueError):
            MachineConfig(num_cores=4, topology=TWO_SOCKET)

    def test_placement_policy_validated(self):
        with pytest.raises(ValueError):
            MachineConfig(placement="random")

    def test_directory_knobs_round_trip(self):
        # Regression (S1): hierarchy_config() used to silently drop the
        # directory knobs and hand DirectoryConfig its defaults.
        machine = MachineConfig(coherence="directory", directory_banks=16,
                                directory_latency=21, bank_occupancy=7,
                                link_latency=13)
        hier = machine.hierarchy_config()
        assert isinstance(hier, DirectoryConfig)
        assert hier.directory_banks == 16
        assert hier.directory_latency == 21
        assert hier.bank_occupancy == 7
        assert hier.link_latency == 13

    def test_for_topology_flat_preset_is_the_default_machine(self):
        machine = MachineConfig.for_topology("table2")
        assert machine.topology is None
        assert machine.coherence == "snoopy"
        assert machine.num_cores == MachineConfig().num_cores

    def test_for_topology_multi_socket_defaults_to_directory(self):
        machine = MachineConfig.for_topology("2s64c")
        assert machine.num_cores == 64
        assert machine.coherence == "directory"
        assert machine.topology is topology_preset("2s64c")

    def test_socket_of_core(self):
        flat = MachineConfig()
        assert flat.socket_of_core(3) == 0
        machine = MachineConfig.for_topology(TWO_SOCKET)
        assert machine.socket_of_core(5) == 1


# ----------------------------------------------------------------------
# Sliced hierarchy structure and NUMA timing
# ----------------------------------------------------------------------

class TestSlicedHierarchy:
    def test_flat_machine_single_slice_named_l2(self):
        hier = MemoryHierarchy(HierarchyConfig())
        assert [c.name for c in hier.llc_slices] == ["L2"]
        assert hier.l2 is hier.llc_slices[0]

    def test_one_slice_per_socket(self):
        hier = DirectoryHierarchy(two_socket_config())
        assert [c.name for c in hier.llc_slices] == ["LLC[0]", "LLC[1]"]
        assert hier.l2 is hier.llc_slices[0]

    def test_slice_geometry_comes_from_the_spec(self):
        spec = TopologySpec(sockets=2, cores_per_socket=4,
                            llc_slice_size=1 << 20, llc_slice_assoc=8)
        hier = DirectoryHierarchy(DirectoryConfig(num_cores=8, topology=spec))
        for llc in hier.llc_slices:
            assert llc.size == 1 << 20
            assert llc.assoc == 8

    def test_commit_and_reset_costs_match_the_spec_formulas(self):
        config = two_socket_config()
        hier = DirectoryHierarchy(config)
        topo = config.topology
        assert hier.commit(1) == topo.multicast_latency(
            config.broadcast_latency)
        assert hier.vid_reset() == topo.reset_scrub_latency(
            config.broadcast_latency, topo.llc_slice_latency)

    def test_per_socket_bank_arrays(self):
        hier = DirectoryHierarchy(two_socket_config(directory_banks=4))
        assert len(hier._bank_free) == 8
        line_size = hier.config.line_size
        # Line 0 homes at socket 0 bank 0; line 1 at socket 1 bank 1.
        assert hier._bank_of(0) == 0
        assert hier._bank_of(line_size) == 4 + 1

    def test_links_charge_numa_hops(self):
        hier = DirectoryHierarchy(two_socket_config())
        topo = hier.config.topology
        assert hier._link(0, 0) == topo.intra_hop_latency
        assert hier._link(0, 1) == topo.cross_hop_latency
        flat = DirectoryHierarchy(DirectoryConfig(num_cores=4))
        assert flat._link(0, 0) == flat.dconfig.link_latency

    def test_victims_route_to_the_home_slice(self):
        # Tiny L1s: the second distinct line mapping to the same set
        # evicts the first, which must land in its *home* slice.
        config = two_socket_config(l1_size=2 * 64, l1_assoc=1)
        hier = DirectoryHierarchy(config)
        line = hier.config.line_size
        sets = config.l1_size // (config.l1_assoc * line)
        a, b = 0, sets * line  # same L1 set, homes 0 and (sets % 2)
        hier.store(0, a, 1, value=7)
        hier.store(0, b, 1, value=8)
        hier.check_invariants()
        hier.check_directory_invariant()

    def test_invariant_catches_foreign_slice_resident(self):
        from repro.coherence.line import CacheLine
        from repro.coherence.states import State

        hier = DirectoryHierarchy(two_socket_config())
        line = hier.config.line_size
        # Line at `line` homes at socket 1; force a copy into slice 0.
        stray = CacheLine(line, State.SHARED, hier.memory.read_line(line))
        hier._install(hier.llc_slices[0], stray)
        with pytest.raises(AssertionError):
            hier.check_invariants()
        with pytest.raises(AssertionError):
            hier.check_directory_invariant()

    def test_multi_socket_run_passes_invariants(self):
        from repro.runtime.paradigms import run_ps_dswp
        from repro.workloads.linkedlist import LinkedListWorkload

        machine = MachineConfig.for_topology(TWO_SOCKET)
        result = run_ps_dswp(LinkedListWorkload(nodes=16, work_cycles=50),
                             config=machine)
        hier = result.system.hierarchy
        hier.check_invariants()
        hier.check_directory_invariant()
        assert result.run.ops_executed > 0


# ----------------------------------------------------------------------
# modelcheck-structure: the injectable harness and its mutants (S2)
# ----------------------------------------------------------------------

def _small_two_socket() -> DirectoryConfig:
    return two_socket_config(l1_size=16 * 64, l1_assoc=2)


class TestStructurePass:
    def test_real_machine_is_clean(self):
        report = check_topology_structure()
        assert report.ok
        assert report.coverage["violations"] == 0
        assert report.coverage["sockets"] == 2
        assert report.coverage["ops_executed"] > 0

    def test_broken_home_routing_yields_mc009(self):
        class BrokenHome(DirectoryHierarchy):
            def _home_llc(self, addr):
                good = super()._home_llc(addr)
                index = self.llc_slices.index(good)
                return self.llc_slices[(index + 1) % len(self.llc_slices)]

        report = check_topology_structure(
            hierarchy_factory=lambda: BrokenHome(_small_two_socket()))
        assert not report.ok
        assert any(f.rule == "MC009" for f in report.findings)

    def test_dropped_sharer_entry_yields_mc010(self):
        class BrokenSharers(DirectoryHierarchy):
            def _install(self, cache, line):
                view = super()._install(cache, line)
                if cache.name == "L1[3]":
                    self._sharers.get(line.addr, set()).discard(cache.name)
                return view

        report = check_topology_structure(
            hierarchy_factory=lambda: BrokenSharers(_small_two_socket()))
        assert not report.ok
        assert any(f.rule == "MC010" for f in report.findings)
