"""Tests for the versioned set-associative cache: lookup, lazy processing,
victim selection, install-replace, VID reset."""

import pytest

from repro.coherence.cache import VersionedCache, victim_priority
from repro.coherence.line import CacheLine
from repro.coherence.states import State


def make_cache(assoc=4, sets=4, **kw):
    return VersionedCache("L1[test]", size=assoc * sets * 64, assoc=assoc,
                          line_size=64, **kw)


def line(addr, state, mod=0, high=0, data=None):
    return CacheLine(addr, state, data if data is not None else [0] * 8,
                     mod, high)


class TestGeometry:
    def test_set_count(self):
        cache = make_cache(assoc=4, sets=8)
        assert cache.num_sets == 8

    def test_size_must_divide(self):
        with pytest.raises(ValueError):
            VersionedCache("bad", size=1000, assoc=3)

    def test_set_index_ignores_vids(self):
        """Section 4.1: the set index depends only on the address."""
        cache = make_cache()
        assert cache.set_index(0x40) == cache.set_index(0x40)
        assert cache.set_index(0x0) != cache.set_index(0x40)

    def test_line_addr(self):
        assert make_cache().line_addr(0x7F) == 0x40


class TestLookup:
    def test_miss_on_empty(self):
        assert make_cache().lookup(0x40, 1) is None

    def test_plain_hit(self):
        cache = make_cache()
        cache.install(line(0x40, State.EXCLUSIVE))
        assert cache.lookup(0x40, 0).state is State.EXCLUSIVE

    def test_version_selection_by_vid(self):
        """The Figure 5 three-version set resolves each VID uniquely."""
        cache = make_cache()
        cache.install(line(0x40, State.SO, 0, 1, data=[10] * 8))
        cache.install(line(0x40, State.SO, 1, 2, data=[11] * 8))
        cache.install(line(0x40, State.SM, 2, 2, data=[12] * 8))
        assert cache.lookup(0x40, 1).data[0] == 11
        assert cache.lookup(0x40, 2).data[0] == 12
        assert cache.lookup(0x40, 5).data[0] == 12

    def test_nonspeculative_requests_use_lc_vid(self):
        cache = make_cache()
        cache.install(line(0x40, State.SO, 0, 2, data=[10] * 8))
        cache.install(line(0x40, State.SM, 2, 2, data=[12] * 8))
        cache.lc_vid = 0
        assert cache.lookup(0x40, 0).data[0] == 10
        # After VID 2 commits, non-speculative readers see version 2.
        cache.broadcast_commit(2)
        hit = cache.lookup(0x40, 0)
        assert hit.data[0] == 12

    def test_duplicate_hit_is_a_protocol_bug(self):
        cache = make_cache()
        cache.install(line(0x40, State.SM, 1, 1))
        # Force an illegal overlapping version in directly (bypassing
        # install's same-version replacement, but registering it in the
        # set list and version index like any resident line).
        cache._inject_line(line(0x40, State.SM, 2, 2))
        with pytest.raises(AssertionError):
            cache.lookup(0x40, 5)


class TestInstallReplace:
    def test_same_modvid_version_is_replaced(self):
        cache = make_cache()
        cache.install(line(0x40, State.SS, 1, 2))
        cache.install(line(0x40, State.SS, 1, 3))
        versions = cache.versions(0x40)
        assert len(versions) == 1
        assert versions[0].vids == (1, 3)

    def test_different_modvid_coexists(self):
        cache = make_cache()
        cache.install(line(0x40, State.SO, 0, 1))
        cache.install(line(0x40, State.SM, 1, 1))
        assert len(cache.versions(0x40)) == 2

    def test_spec_and_nonspec_mod0_do_not_replace(self):
        cache = make_cache()
        cache.install(line(0x40, State.SO, 0, 5))
        cache.install(line(0x80, State.EXCLUSIVE))
        assert len(cache.versions(0x40)) == 1


class TestVictimSelection:
    def test_priority_ordering(self):
        assert victim_priority(line(0, State.INVALID)) \
            < victim_priority(line(0, State.SHARED)) \
            < victim_priority(line(0, State.MODIFIED)) \
            < victim_priority(line(0, State.SS, 1, 2)) \
            < victim_priority(line(0, State.SO, 0, 2)) \
            < victim_priority(line(0, State.SO, 1, 2))

    def test_pinned_speculative_evicted_last(self):
        """Section 5.4: overflowable S-O (modVID 0) preferred over versions
        whose eviction past the LLC would abort."""
        cache = make_cache(assoc=2, sets=1)
        cache.install(line(0x00, State.SM, 1, 1))
        cache.install(line(0x40, State.SO, 0, 1))
        evicted = cache.install(line(0x80, State.SE, 0, 2))
        assert len(evicted) == 1
        assert evicted[0].state is State.SO       # not the S-M

    def test_committed_version_processed_before_choosing(self):
        """A stale, fully-committed superseded version must die during
        victim selection rather than be evicted as 'speculative'."""
        cache = make_cache(assoc=2, sets=1)
        cache.install(line(0x00, State.SO, 1, 2))
        cache.install(line(0x40, State.SM, 2, 2))
        cache.broadcast_commit(2)
        evicted = cache.install(line(0x80, State.EXCLUSIVE))
        # S-O(1,2) died at processing; nothing live needed eviction.
        assert evicted == []
        assert cache.occupancy() == 2

    def test_lru_within_class(self):
        cache = make_cache(assoc=2, sets=1)
        cache.install(line(0x00, State.EXCLUSIVE))
        cache.install(line(0x40, State.EXCLUSIVE))
        cache.lookup(0x00, 0)  # touch -> 0x40 becomes LRU
        evicted = cache.install(line(0x80, State.EXCLUSIVE))
        assert evicted[0].addr == 0x40


class TestLazyCommitAbort:
    def test_commit_broadcast_is_o1(self):
        cache = make_cache()
        for i in range(4):
            cache.install(line(0x40 * i, State.SM, 1, 1))
        cache.broadcast_commit(1)
        assert cache.lc_vid == 1
        # No state changed yet (lazy): raw stored states still S-M.
        raw = [l for l in cache.all_lines()]
        assert all(l.state is State.SM for l in raw)

    def test_commit_processed_at_touch(self):
        cache = make_cache()
        cache.install(line(0x40, State.SM, 1, 1))
        cache.broadcast_commit(1)
        hit = cache.lookup(0x40, 0)
        assert hit.state is State.MODIFIED
        assert hit.vids == (0, 0)

    def test_se_commits_clean(self):
        cache = make_cache()
        cache.install(line(0x40, State.SE, 0, 1))
        cache.broadcast_commit(1)
        assert cache.lookup(0x40, 0).state is State.EXCLUSIVE

    def test_abort_processed_at_touch(self):
        cache = make_cache()
        cache.install(line(0x40, State.SM, 1, 1))
        cache.install(line(0x80, State.SE, 0, 1))
        cache.broadcast_abort()
        assert cache.lookup(0x40, 0) is None          # doomed data died
        assert cache.lookup(0x80, 0).state is State.SHARED

    def test_commit_then_abort_ordering(self):
        """The CB-then-AB race of the flash-bit scheme, resolved exactly:
        a commit broadcast followed by an abort must commit VID 1's data
        and kill VID 2's."""
        cache = make_cache()
        cache.install(line(0x40, State.SO, 1, 2, data=[7] * 8))  # v1 backup... superseded by v2
        cache.install(line(0x80, State.SM, 1, 1, data=[5] * 8))  # v1's own line
        cache.broadcast_commit(1)
        cache.broadcast_abort()
        # v1's S-M line was *fully* committed before the abort (the
        # commit transition ran first during replay), so it is already a
        # plain MODIFIED line the abort does not touch.
        hit = cache.lookup(0x80, 0)
        assert hit.state is State.MODIFIED
        assert hit.data[0] == 5
        # The S-O(1,2): commit(1) zeroes modVID, abort drops the spec
        # marking -> survives as OWNED with version-1 data.
        hit40 = cache.lookup(0x40, 0)
        assert hit40.state is State.OWNED
        assert hit40.data[0] == 7

    def test_multiple_aborts_replay_in_order(self):
        cache = make_cache()
        cache.install(line(0x40, State.SM, 3, 3))
        cache.broadcast_abort()
        cache.broadcast_abort()
        assert cache.lookup(0x40, 0) is None

    def test_install_after_abort_not_affected(self):
        cache = make_cache()
        cache.broadcast_abort()
        cache.install(line(0x40, State.SM, 1, 1))
        assert cache.lookup(0x40, 1).state is State.SM


class TestVidReset:
    def test_reset_scrubs_all_vids(self):
        cache = make_cache()
        cache.install(line(0x00, State.SM, 63, 63, data=[1] * 8))
        cache.install(line(0x40, State.SO, 0, 63))
        cache.broadcast_commit(63)
        cache.vid_reset()
        assert cache.lc_vid == 0
        for l in cache.all_lines():
            assert not l.is_speculative()
            assert l.vids == (0, 0)

    def test_reset_preserves_latest_data(self):
        cache = make_cache()
        cache.install(line(0x00, State.SM, 5, 5, data=[42] * 8))
        cache.broadcast_commit(5)
        cache.vid_reset()
        assert cache.lookup(0x00, 0).data[0] == 42

    def test_new_epoch_vids_work_after_reset(self):
        cache = make_cache()
        cache.install(line(0x00, State.SM, 60, 60))
        cache.broadcast_commit(60)
        cache.vid_reset()
        # New epoch's VID 1 must hit the (now non-speculative) line.
        assert cache.lookup(0x00, 1) is not None

    def test_reset_clears_abort_history(self):
        cache = make_cache()
        cache.install(line(0x00, State.SM, 2, 2))
        cache.broadcast_commit(2)
        cache.broadcast_abort()
        cache.vid_reset()
        assert cache._abort_history == []
        cache.install(line(0x40, State.SM, 1, 1))
        assert cache.lookup(0x40, 1).state is State.SM
