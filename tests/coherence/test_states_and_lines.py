"""Tests for the coherence state taxonomy and the cache-line model."""

import pytest

from repro.coherence.line import CacheLine
from repro.coherence.memory import MainMemory
from repro.coherence.states import (
    CLEAN_STATES,
    DIRTY_STATES,
    LATEST_SPEC_STATES,
    NONSPECULATIVE_STATES,
    SPECULATIVE_STATES,
    SUPERSEDED_SPEC_STATES,
    State,
    is_dirty,
    is_speculative,
    is_valid,
)


class TestStateTaxonomy:
    def test_nine_states_total(self):
        assert len(State) == 9

    def test_speculative_and_nonspeculative_partition(self):
        assert SPECULATIVE_STATES | NONSPECULATIVE_STATES == frozenset(State)
        assert not SPECULATIVE_STATES & NONSPECULATIVE_STATES

    def test_four_speculative_states(self):
        assert SPECULATIVE_STATES == {State.SM, State.SO, State.SE, State.SS}

    def test_latest_vs_superseded_partition_speculative(self):
        assert LATEST_SPEC_STATES | SUPERSEDED_SPEC_STATES == SPECULATIVE_STATES
        assert not LATEST_SPEC_STATES & SUPERSEDED_SPEC_STATES

    def test_dirty_clean_partition_valid_states(self):
        valid = frozenset(State) - {State.INVALID}
        assert DIRTY_STATES | CLEAN_STATES == valid
        assert not DIRTY_STATES & CLEAN_STATES

    def test_se_is_clean_sm_is_dirty(self):
        """Section 4.1: S-E returns clean on commit, S-M dirty."""
        assert not is_dirty(State.SE)
        assert is_dirty(State.SM)

    def test_is_valid(self):
        assert not is_valid(State.INVALID)
        assert all(is_valid(s) for s in State if s is not State.INVALID)

    def test_is_speculative(self):
        assert is_speculative(State.SS)
        assert not is_speculative(State.MODIFIED)


class TestCacheLine:
    def test_vids_tuple_matches_paper_notation(self):
        line = CacheLine(0x40, State.SM, [0] * 8, mod_vid=2, high_vid=5)
        assert line.vids == (2, 5)

    def test_negative_vids_rejected(self):
        with pytest.raises(ValueError):
            CacheLine(0x40, State.SM, [0] * 8, mod_vid=-1)

    def test_copy_data_does_not_alias(self):
        line = CacheLine(0x40, State.SM, [1, 2, 3])
        copy = line.copy_data()
        copy[0] = 99
        assert line.data[0] == 1

    def test_set_vids(self):
        line = CacheLine(0x40, State.SE, [0])
        line.set_vids(0, 7)
        assert line.vids == (0, 7)

    def test_speculative_and_dirty_predicates(self):
        assert CacheLine(0, State.SO, [0], 1, 2).is_speculative()
        assert CacheLine(0, State.SO, [0], 1, 2).is_dirty()
        assert not CacheLine(0, State.SHARED, [0]).is_speculative()


class TestMainMemory:
    def test_word_roundtrip(self):
        mem = MainMemory()
        mem.write_word(0x100, 42)
        assert mem.read_word(0x100) == 42

    def test_unwritten_words_read_zero(self):
        assert MainMemory().read_word(0x9999998) == 0

    def test_word_alignment(self):
        mem = MainMemory()
        mem.write_word(0x105, 7)  # lands in the word at 0x100
        assert mem.read_word(0x100) == 7

    def test_line_roundtrip(self):
        mem = MainMemory()
        data = list(range(8))
        mem.write_line(0x1000, data)
        assert mem.read_line(0x1000) == data

    def test_line_addressing_helpers(self):
        mem = MainMemory()
        assert mem.line_addr(0x1035) == 0x1000
        assert mem.word_index(0x1010) == 2
        assert mem.words_per_line == 8

    def test_wrong_line_length_rejected(self):
        with pytest.raises(ValueError):
            MainMemory().write_line(0, [1, 2, 3])

    def test_line_size_must_be_word_multiple(self):
        with pytest.raises(ValueError):
            MainMemory(line_size=60)

    def test_traffic_counters(self):
        mem = MainMemory()
        mem.write_line(0, [0] * 8)
        mem.read_line(0)
        assert mem.writebacks == 1
        assert mem.reads == 1

    def test_footprint(self):
        mem = MainMemory()
        mem.write_word(0x0, 1)
        mem.write_word(0x8, 1)    # same line
        mem.write_word(0x40, 1)   # next line
        assert mem.footprint_lines() == 2
