"""VID-shift invariance of the protocol decision functions (hypothesis).

The paper's section 4.6 VID-reset argument rests on the protocol caring
only about the *relative order* of VIDs, never their absolute values: a
recycled namespace behaves identically to a fresh one.  These property
tests state that directly — uniformly shifting every nonzero VID in a
decision's inputs (keeping them inside the m=6-bit namespace, with 0
staying 0 because VID 0 *is* the non-speculative marker) must not change
any hit/miss decision, write classification, or transition result.

The model checker (``repro.analysis.modelcheck``) proves the invariants
pointwise over the whole space; these tests prove the *symmetry* that
makes the VID-reset protocol sound.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.modelcheck import reachable
from repro.coherence import protocol
from repro.coherence.states import State

MAX_VID = (1 << 6) - 1


def shift(vid: int, delta: int) -> int:
    """Uniform namespace shift: VID 0 (non-speculative) is a fixed point."""
    return 0 if vid == 0 else vid + delta


@st.composite
def version_request_and_shift(draw):
    """A reachable version tuple, a request VID, and a legal shift.

    Tuples are built constructively from the per-state reachability
    constraints (S-E carries ``modVID == 0``, S-O strictly ``m < h``,
    non-speculative lines ``(0, 0)``), cross-checked against the model
    checker's :func:`reachable` predicate.
    """
    state = draw(st.sampled_from(list(State)))
    if state is State.SE:
        m, h = 0, draw(st.integers(1, MAX_VID - 1))
    elif state is State.SO:
        h = draw(st.integers(1, MAX_VID - 1))
        m = draw(st.integers(0, h - 1))
    elif state.speculative:  # S-M / S-S
        h = draw(st.integers(1, MAX_VID - 1))
        m = draw(st.integers(0, h))
    else:
        m = h = 0
    assert reachable(state, m, h)
    a = draw(st.integers(0, MAX_VID - 1))
    delta = draw(st.integers(0, MAX_VID - max(m, h, a)))
    return state, m, h, a, delta


@settings(max_examples=300)
@given(version_request_and_shift())
def test_hit_window_is_shift_invariant(case):
    state, m, h, a, delta = case
    assert protocol.version_hits(state, shift(m, delta), shift(h, delta),
                                 shift(a, delta)) \
        == protocol.version_hits(state, m, h, a)


@settings(max_examples=300)
@given(version_request_and_shift())
def test_write_outcome_is_shift_invariant(case):
    state, m, h, a, delta = case
    assert protocol.write_outcome(state, shift(m, delta), shift(h, delta),
                                  shift(a, delta)) \
        is protocol.write_outcome(state, m, h, a)


@settings(max_examples=300)
@given(version_request_and_shift())
def test_read_transition_is_shift_equivariant(case):
    state, m, h, a, delta = case
    assume(a > 0 and protocol.version_hits(state, m, h, a))
    base_state, (bm, bh) = protocol.read_transition(state, m, h, a)
    got_state, (gm, gh) = protocol.read_transition(
        state, shift(m, delta), shift(h, delta), shift(a, delta))
    assert got_state is base_state
    assert (gm, gh) == (shift(bm, delta), shift(bh, delta))


@settings(max_examples=300)
@given(version_request_and_shift())
def test_commit_transition_is_shift_equivariant(case):
    state, m, h, c, delta = case
    assume(c > 0)
    base_state, (bm, bh) = protocol.commit_transition(state, m, h, c)
    got_state, (gm, gh) = protocol.commit_transition(
        state, shift(m, delta), shift(h, delta), shift(c, delta))
    assert got_state is base_state
    assert (gm, gh) == (shift(bm, delta), shift(bh, delta))


@settings(max_examples=300)
@given(version_request_and_shift())
def test_reset_scrubs_every_reachable_version(case):
    """Section 4.6: after a reset no VID from the old epoch survives, so a
    recycled namespace cannot alias stale versions regardless of shift."""
    state, m, h, _, delta = case
    new_state, vids = protocol.reset_transition(
        state, shift(m, delta), shift(h, delta))
    assert vids == (0, 0)
    assert not new_state.speculative
