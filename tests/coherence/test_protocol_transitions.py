"""Exhaustive and property-based tests of the Figure 4/6/7 state machines.

These are the paper's core correctness artifacts: hit-window rules
(section 4.1), write outcomes (Figure 4), commit transitions (Figure 6),
abort transitions (Figure 7), and the VID-reset scrub (section 4.6).
"""

import pytest
from hypothesis import given, strategies as st

from repro.coherence.protocol import (
    NewVersionPlan,
    WriteOutcome,
    abort_transition,
    commit_transition,
    plan_new_version,
    read_transition,
    reset_transition,
    snoop_response_state,
    version_hits,
    write_outcome,
)
from repro.coherence.states import (
    LATEST_SPEC_STATES,
    SPECULATIVE_STATES,
    SUPERSEDED_SPEC_STATES,
    State,
    is_speculative,
)

vids = st.integers(min_value=0, max_value=63)
pos_vids = st.integers(min_value=1, max_value=63)


# ----------------------------------------------------------------------
# Hit windows (section 4.1)
# ----------------------------------------------------------------------

class TestVersionHits:
    def test_invalid_never_hits(self):
        assert not version_hits(State.INVALID, 0, 0, 0)
        assert not version_hits(State.INVALID, 0, 0, 5)

    @pytest.mark.parametrize("state", [State.MODIFIED, State.OWNED,
                                       State.EXCLUSIVE, State.SHARED])
    def test_nonspeculative_states_always_hit(self, state):
        for vid in (0, 1, 33, 63):
            assert version_hits(state, 0, 0, vid)

    @pytest.mark.parametrize("state", [State.SM, State.SE])
    def test_latest_versions_hit_at_or_above_modvid(self, state):
        mod = 0 if state is State.SE else 5
        assert version_hits(state, mod, mod, mod)
        assert version_hits(state, mod, mod, mod + 7)
        if mod:
            assert not version_hits(state, mod, mod, mod - 1)

    @pytest.mark.parametrize("state", [State.SO, State.SS])
    def test_superseded_versions_serve_half_open_window(self, state):
        # S-O(2, 5) serves VIDs 2, 3, 4 — not 5 (figure 5's example).
        assert not version_hits(state, 2, 5, 1)
        assert version_hits(state, 2, 5, 2)
        assert version_hits(state, 2, 5, 4)
        assert not version_hits(state, 2, 5, 5)
        assert not version_hits(state, 2, 5, 9)

    def test_figure5_windows(self):
        """The exact version set of Figure 5 instruction 3."""
        versions = [(State.SO, 0, 1), (State.SO, 1, 2), (State.SM, 2, 2)]
        for vid, expected in [(0, 0), (1, 1), (2, 2), (5, 2)]:
            hits = [i for i, (s, m, h) in enumerate(versions)
                    if version_hits(s, m, h, vid)]
            assert hits == [expected]

    @given(st.sampled_from(sorted(SPECULATIVE_STATES, key=str)),
           vids, vids, vids)
    def test_windows_never_hit_below_modvid(self, state, mod, high, vid):
        if version_hits(state, mod, high, vid):
            assert vid >= mod

    @given(vids, pos_vids, vids)
    def test_version_partition_is_disjoint(self, mod_a, width, vid):
        """A superseded version and its successor never both hit."""
        high_a = mod_a + width          # S-O(mod_a, high_a)
        mod_b = high_a                  # S-M(mod_b, ...)
        hit_a = version_hits(State.SO, mod_a, high_a, vid)
        hit_b = version_hits(State.SM, mod_b, mod_b, vid)
        assert not (hit_a and hit_b)
        if vid >= mod_a:
            assert hit_a or hit_b


# ----------------------------------------------------------------------
# Read transitions (Figure 4)
# ----------------------------------------------------------------------

class TestReadTransition:
    def test_clean_line_becomes_se(self):
        assert read_transition(State.EXCLUSIVE, 0, 0, 3) == (State.SE, (0, 3))
        assert read_transition(State.SHARED, 0, 0, 3) == (State.SE, (0, 3))

    def test_dirty_line_becomes_sm(self):
        assert read_transition(State.MODIFIED, 0, 0, 3) == (State.SM, (0, 3))
        assert read_transition(State.OWNED, 0, 0, 3) == (State.SM, (0, 3))

    def test_latest_version_raises_highvid(self):
        assert read_transition(State.SM, 2, 2, 5) == (State.SM, (2, 5))
        assert read_transition(State.SE, 0, 4, 2) == (State.SE, (0, 4))

    def test_superseded_version_is_immutable(self):
        assert read_transition(State.SO, 1, 4, 2) == (State.SO, (1, 4))
        assert read_transition(State.SS, 1, 4, 3) == (State.SS, (1, 4))

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            read_transition(State.INVALID, 0, 0, 1)

    @given(st.sampled_from(sorted(LATEST_SPEC_STATES, key=str)), vids, pos_vids)
    def test_highvid_is_monotone(self, state, high, vid):
        mod = 0 if state is State.SE else min(high, 3)
        _, (_, new_high) = read_transition(state, mod, high, vid)
        assert new_high >= high
        assert new_high >= vid


# ----------------------------------------------------------------------
# Write outcomes (Figure 4 / section 4.3)
# ----------------------------------------------------------------------

class TestWriteOutcome:
    def test_write_to_superseded_version_aborts(self):
        assert write_outcome(State.SO, 1, 3, 2) is WriteOutcome.ABORT
        assert write_outcome(State.SS, 1, 3, 2) is WriteOutcome.ABORT

    def test_write_below_highvid_aborts(self):
        # A logically-later VID already accessed the line (RAW hazard).
        assert write_outcome(State.SM, 2, 6, 4) is WriteOutcome.ABORT
        assert write_outcome(State.SE, 0, 6, 4) is WriteOutcome.ABORT

    def test_same_transaction_rewrites_in_place(self):
        assert write_outcome(State.SM, 4, 4, 4) is WriteOutcome.IN_PLACE

    def test_later_vid_creates_new_version(self):
        assert write_outcome(State.SM, 2, 2, 5) is WriteOutcome.NEW_VERSION
        assert write_outcome(State.SE, 0, 3, 3) is WriteOutcome.NEW_VERSION

    def test_write_to_nonspeculative_creates_version(self):
        for state in (State.MODIFIED, State.EXCLUSIVE, State.OWNED, State.SHARED):
            assert write_outcome(state, 0, 0, 1) is WriteOutcome.NEW_VERSION

    @given(vids, vids, pos_vids)
    def test_no_write_ever_modifies_older_version_silently(self, mod, extra, vid):
        """Any accepted write targets the latest version at or above its
        highVID — the informal 4.3 invariant."""
        high = mod + extra
        outcome = write_outcome(State.SM, mod, high, vid)
        if outcome is not WriteOutcome.ABORT:
            assert vid >= high


class TestPlanNewVersion:
    def test_backup_keeps_old_modvid_with_raised_highvid(self):
        plan = plan_new_version(State.SM, 2, 2, 5)
        assert plan == NewVersionPlan(State.SO, (2, 5), (5, 5))

    def test_nonspeculative_backup_has_modvid_zero(self):
        plan = plan_new_version(State.MODIFIED, 0, 0, 3)
        assert plan.old_vids == (0, 3)
        assert plan.new_vids == (3, 3)

    def test_rejects_non_new_version_cases(self):
        with pytest.raises(ValueError):
            plan_new_version(State.SM, 4, 4, 4)  # in-place case

    @given(pos_vids, pos_vids)
    def test_backup_window_excludes_writer(self, mod, delta):
        vid = mod + delta
        plan = plan_new_version(State.SM, mod, mod, vid)
        old_mod, old_high = plan.old_vids
        assert not version_hits(State.SO, old_mod, old_high, vid)
        assert version_hits(State.SO, old_mod, old_high, mod)


# ----------------------------------------------------------------------
# Commit (Figure 6)
# ----------------------------------------------------------------------

class TestCommitTransition:
    def test_fully_committed_latest_versions_become_nonspec(self):
        assert commit_transition(State.SM, 2, 2, 2) == (State.MODIFIED, (0, 0))
        assert commit_transition(State.SE, 0, 2, 2) == (State.EXCLUSIVE, (0, 0))

    def test_fully_committed_superseded_versions_die(self):
        assert commit_transition(State.SO, 0, 1, 1) == (State.INVALID, (0, 0))
        assert commit_transition(State.SS, 1, 2, 5) == (State.INVALID, (0, 0))

    def test_partially_committed_version_zeroes_modvid(self):
        # Figure 5 step 5: S-O(1,2) after commit(1) becomes S-O(0,2).
        assert commit_transition(State.SO, 1, 2, 1) == (State.SO, (0, 2))
        assert commit_transition(State.SM, 2, 7, 3) == (State.SM, (0, 7))

    def test_uncommitted_version_unchanged(self):
        assert commit_transition(State.SM, 5, 7, 3) == (State.SM, (5, 7))

    def test_nonspeculative_untouched(self):
        assert commit_transition(State.MODIFIED, 0, 0, 9) == (State.MODIFIED, (0, 0))

    def test_folding_consecutive_commits(self):
        """Processing commits 1..k lazily in one step must equal stepwise."""
        state, (mod, high) = State.SM, (3, 9)
        for c in range(1, 6):
            state, (mod, high) = commit_transition(state, mod, high, c)
        assert (state, (mod, high)) == commit_transition(State.SM, 3, 9, 5)

    @given(st.sampled_from(sorted(SPECULATIVE_STATES, key=str)),
           vids, vids, vids, vids)
    def test_commit_is_idempotent(self, state, mod, extra, c1, c2):
        high = mod + extra
        once = commit_transition(state, mod, high, c1)
        twice = commit_transition(once[0], *once[1], commit_vid=c1)
        assert once == twice

    @given(st.sampled_from(sorted(SPECULATIVE_STATES, key=str)),
           vids, vids, st.integers(min_value=0, max_value=62))
    def test_commit_order_can_fold(self, state, mod, extra, c):
        """commit(c) then commit(c+1) == commit(c+1) directly (monotone)."""
        high = mod + extra
        step = commit_transition(state, mod, high, c)
        stepped = commit_transition(step[0], *step[1], commit_vid=c + 1)
        folded = commit_transition(state, mod, high, c + 1)
        assert stepped == folded


# ----------------------------------------------------------------------
# Abort (Figure 7) and VID reset (section 4.6)
# ----------------------------------------------------------------------

class TestAbortTransition:
    def test_speculatively_modified_versions_die(self):
        assert abort_transition(State.SM, 3, 3) == (State.INVALID, (0, 0))
        assert abort_transition(State.SO, 2, 5) == (State.INVALID, (0, 0))
        assert abort_transition(State.SS, 1, 4) == (State.INVALID, (0, 0))

    def test_speculatively_read_real_data_survives(self):
        # Deviation from Figure 7 (see protocol.py): survivors land in the
        # *shared* states so stale peer copies can never outlive an owner
        # that claims exclusivity.
        assert abort_transition(State.SM, 0, 4) == (State.OWNED, (0, 0))
        assert abort_transition(State.SE, 0, 4) == (State.SHARED, (0, 0))
        assert abort_transition(State.SO, 0, 4) == (State.OWNED, (0, 0))
        assert abort_transition(State.SS, 0, 4) == (State.SHARED, (0, 0))

    def test_nonspeculative_untouched(self):
        assert abort_transition(State.OWNED, 0, 0) == (State.OWNED, (0, 0))

    @given(st.sampled_from(sorted(SPECULATIVE_STATES, key=str)), vids, vids)
    def test_abort_never_leaves_speculative_state(self, state, mod, extra):
        new_state, (new_mod, new_high) = abort_transition(state, mod, mod + extra)
        assert not is_speculative(new_state)
        assert (new_mod, new_high) == (0, 0)

    @given(st.sampled_from(sorted(SPECULATIVE_STATES, key=str)), vids, vids)
    def test_abort_never_commits_speculative_data(self, state, mod, extra):
        """Dirty speculative data must never survive an abort."""
        if mod > 0:
            new_state, _ = abort_transition(state, mod, mod + extra)
            assert new_state is State.INVALID


class TestResetTransition:
    def test_reset_commits_latest_and_drops_superseded(self):
        assert reset_transition(State.SM, 0, 5) == (State.MODIFIED, (0, 0))
        assert reset_transition(State.SE, 0, 5) == (State.EXCLUSIVE, (0, 0))
        assert reset_transition(State.SO, 0, 5) == (State.INVALID, (0, 0))
        assert reset_transition(State.SS, 2, 5) == (State.INVALID, (0, 0))

    @given(st.sampled_from(sorted(SPECULATIVE_STATES, key=str)), vids, vids)
    def test_reset_clears_all_vids(self, state, mod, extra):
        _, vids_after = reset_transition(state, mod, mod + extra)
        assert vids_after == (0, 0)


class TestSnoopResponse:
    def test_ss_is_silent(self):
        assert snoop_response_state(State.SS) is None

    def test_speculative_owners_hand_out_ss(self):
        for state in (State.SM, State.SO, State.SE):
            assert snoop_response_state(state) is State.SS

    def test_nonspeculative_owners_hand_out_shared(self):
        for state in (State.MODIFIED, State.OWNED, State.EXCLUSIVE, State.SHARED):
            assert snoop_response_state(state) is State.SHARED

    def test_invalid_does_not_respond(self):
        assert snoop_response_state(State.INVALID) is None
