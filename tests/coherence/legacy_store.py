"""The pre-rewrite object-per-line cache, kept as a differential oracle.

This is the seed's ``repro.coherence.cache.VersionedCache`` (commit
53c92f4, before the struct-of-arrays line store of DESIGN.md section 13)
with only mechanical changes: absolute imports, the class renamed to
:class:`LegacyVersionedCache`, and ``CacheStats`` / ``victim_priority``
imported from the live module instead of duplicated (they are unchanged,
and sharing the dataclass makes ``stats`` directly comparable).

It exists so ``test_store_differential.py`` can drive the old object model
and the new slot arena through identical operation sequences and assert
bit-identical observable behaviour.  It is a test fixture, not production
code — do not import it from ``src/``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.coherence.cache import CacheStats, victim_priority
from repro.coherence.line import CacheLine
from repro.coherence.protocol import (
    abort_transition,
    commit_transition,
    reset_transition,
    version_hits,
)
from repro.coherence.states import State
from repro.coherence.vid import CascadedComparator


class LegacyVersionedCache:
    """One level of HMTX-capable cache (an L1 or the shared L2).

    Parameters
    ----------
    name:
        Human-readable identifier (``"L1[0]"``, ``"L2"``).
    size:
        Capacity in bytes.
    assoc:
        Ways per set.
    line_size:
        Bytes per line.
    hit_latency:
        Cycles charged for a hit at this level.
    vid_bits:
        Width of the VID comparators (for the section 4.5 model).
    """

    def __init__(self, name: str, size: int, assoc: int, line_size: int = 64,
                 hit_latency: int = 2, vid_bits: int = 6) -> None:
        if size % (assoc * line_size):
            raise ValueError("cache size must be a multiple of assoc * line_size")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.hit_latency = hit_latency
        self.num_sets = size // (assoc * line_size)
        self.lc_vid = 0
        self.stats = CacheStats()
        self.comparator = CascadedComparator(bits=vid_bits)
        #: Set lists, allocated on first touch (a 32 MB L2 has 16 k sets;
        #: most runs touch a handful).
        self._sets: Dict[int, List[CacheLine]] = {}
        self._tick = 0
        #: LC_VID snapshots at each abort broadcast (lazy abort processing).
        self._abort_history: List[int] = []
        # -- fast-path state ------------------------------------------------
        #: Event epoch: bumped on every commit/abort/reset broadcast.
        self._epoch = 0
        #: Epoch at which each set last had *every* line lazily processed.
        self._set_epochs: Dict[int, int] = {}
        #: line address -> resident versions, in set-list (insertion) order.
        self._by_base: Dict[int, List[CacheLine]] = {}
        #: Maintained counters backing the snoop filters.
        self._spec_lines = 0
        self._sm_live = 0
        #: Hierarchy hook: called ``(cache, base, present)`` when this cache
        #: gains its first / loses its last version of a line address.
        self.presence_listener: Optional[Callable] = None
        # Precomputed address masks (power-of-two geometry is the norm;
        # anything else falls back to div/mod).
        if line_size & (line_size - 1) == 0:
            self._offset_mask = line_size - 1
            self._line_shift = line_size.bit_length() - 1
        else:
            self._offset_mask = None
            self._line_shift = None
        self._index_mask = (self.num_sets - 1
                            if self.num_sets & (self.num_sets - 1) == 0
                            else None)

    # ------------------------------------------------------------------
    # Addressing helpers
    # ------------------------------------------------------------------

    def line_addr(self, addr: int) -> int:
        mask = self._offset_mask
        if mask is not None:
            return addr & ~mask
        return addr - (addr % self.line_size)

    def set_index(self, addr: int) -> int:
        """Set index depends only on the address, never on VIDs (4.1)."""
        if self._offset_mask is not None and self._index_mask is not None:
            return (addr >> self._line_shift) & self._index_mask
        return (self.line_addr(addr) // self.line_size) % self.num_sets

    def _touch(self, line: CacheLine) -> None:
        self._tick += 1
        line.lru_tick = self._tick

    def _set_list(self, index: int) -> List[CacheLine]:
        lines = self._sets.get(index)
        if lines is None:
            lines = self._sets[index] = []
        return lines

    # ------------------------------------------------------------------
    # Index / filter maintenance
    # ------------------------------------------------------------------

    def _index_add(self, line: CacheLine) -> None:
        """Enter a line into the per-base index and filter counters."""
        bucket = self._by_base.get(line.addr)
        if bucket is None:
            bucket = self._by_base[line.addr] = []
            if self.presence_listener is not None:
                self.presence_listener(self, line.addr, True)
        bucket.append(line)
        line.cache = self
        state = line.state
        if state.speculative:
            self._spec_lines += 1
            if state is State.SM and line.mod_vid > 0:
                self._sm_live += 1

    def _index_remove(self, line: CacheLine) -> None:
        """Drop a line from the per-base index and filter counters."""
        bucket = self._by_base[line.addr]
        bucket.remove(line)
        if not bucket:
            del self._by_base[line.addr]
            if self.presence_listener is not None:
                self.presence_listener(self, line.addr, False)
        line.cache = None
        state = line.state
        if state.speculative:
            self._spec_lines -= 1
            if state is State.SM and line.mod_vid > 0:
                self._sm_live -= 1

    def _on_retag(self, line: CacheLine, state: State, mod_vid: int) -> None:
        """Adjust filter counters for an in-place tag change (line.retag)."""
        old = line.state
        if old.speculative != state.speculative:
            self._spec_lines += 1 if state.speculative else -1
        old_sm = old is State.SM and line.mod_vid > 0
        new_sm = state is State.SM and mod_vid > 0
        if old_sm != new_sm:
            self._sm_live += 1 if new_sm else -1

    @property
    def speculative_lines(self) -> int:
        """Resident speculative versions (maintained Figure 9 counter)."""
        return self._spec_lines

    def holds(self, addr: int) -> bool:
        """O(1): does this cache hold any version of ``addr``'s line?"""
        return self.line_addr(addr) in self._by_base

    # ------------------------------------------------------------------
    # Lazy commit/abort processing (section 5.3)
    # ------------------------------------------------------------------

    def process_lazy(self, line: CacheLine) -> Optional[CacheLine]:
        """Resolve a line's pending commit/abort transitions (section 5.3).

        Replays, in broadcast order, every event the line has not yet
        processed: for each unseen abort, the commits up to the pre-abort
        ``LC_VID`` apply first (Figure 6), then the abort (Figure 7);
        finally the current ``LC_VID`` commit level applies.  Commit
        processing needs no per-line pending bit because
        :func:`~repro.coherence.protocol.commit_transition` is idempotent —
        re-applying the current commit level to an up-to-date line is a
        no-op.

        Fast path: a line stamped with the cache's current event epoch was
        fully processed after the last broadcast, so the whole replay would
        be a no-op and is skipped (no counter can differ — idempotent
        commits bump no statistic, and ``seen_aborts`` is already current).

        Returns the line if it is still valid afterwards, or ``None`` if a
        transition invalidated it (in which case it has been removed from
        its set).
        """
        epoch = self._epoch
        if line.epoch == epoch:
            return line
        if not line.state.speculative:
            line.seen_aborts = len(self._abort_history)
            line.epoch = epoch
            return line
        history = self._abort_history
        while line.seen_aborts < len(history):
            lc_at_abort = history[line.seen_aborts]
            line.seen_aborts += 1
            state, (mod, high) = commit_transition(
                line.state, line.mod_vid, line.high_vid, lc_at_abort)
            self.stats.lazy_commits_processed += 1
            state, (mod, high) = abort_transition(state, mod, high)
            self.stats.lazy_aborts_processed += 1
            line.retag(state, mod, high)
            if state is State.INVALID:
                self._remove(line)
                return None
            if not state.speculative:
                line.seen_aborts = len(history)
                line.epoch = epoch
                return line
        state, (mod, high) = commit_transition(
            line.state, line.mod_vid, line.high_vid, self.lc_vid)
        if state is not line.state or mod != line.mod_vid or high != line.high_vid:
            self.stats.lazy_commits_processed += 1
            line.retag(state, mod, high)
        if state is State.INVALID:
            self._remove(line)
            return None
        line.epoch = epoch
        return line

    def _remove(self, line: CacheLine) -> None:
        if line.cache is not self:
            return
        self._set_list(self.set_index(line.addr)).remove(line)
        self._index_remove(line)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def versions(self, addr: int) -> List[CacheLine]:
        """All valid versions of ``addr`` present, lazily processed first."""
        bucket = self._by_base.get(self.line_addr(addr))
        if not bucket:
            return []
        epoch = self._epoch
        for line in bucket:
            if line.epoch != epoch:
                break
        else:
            # Every version already processed since the last broadcast:
            # no replay, no removal possible.
            return bucket[:]
        out = []
        for line in list(bucket):
            processed = self.process_lazy(line)
            if processed is not None:
                out.append(processed)
        return out

    def effective_vid(self, req_vid: int) -> int:
        """Non-speculative requests use ``LC_VID`` for hit logic (5.3)."""
        return self.lc_vid if req_vid == 0 else req_vid

    def lookup(self, addr: int, req_vid: int) -> Optional[CacheLine]:
        """Return the unique version a request with ``req_vid`` hits, if any.

        ``req_vid`` is the raw request VID; the LC_VID substitution for
        non-speculative requests happens here.
        """
        bucket = self._by_base.get(self.line_addr(addr))
        if not bucket:
            return None
        if len(bucket) == 1:
            line = bucket[0]
            # Dominant case: one resident non-speculative, fully-processed
            # version.  It hits any VID, engages no comparator, and cannot
            # collide with a second hit — skip the generic scan.
            if line.epoch == self._epoch and not line.state.speculative:
                self._tick += 1
                line.lru_tick = self._tick
                return line
        eff = self.lc_vid if req_vid == 0 else req_vid
        hit = None
        comparator = self.comparator
        for line in self.versions(addr):
            if line.state.speculative:
                # Model the tag-check energy of the VID comparators (4.5).
                comparator.compare(eff, line.mod_vid)
                comparator.compare(eff, line.high_vid)
            if version_hits(line.state, line.mod_vid, line.high_vid, eff):
                if hit is not None:
                    raise AssertionError(
                        f"{self.name}: two versions hit VID {eff} at "
                        f"0x{addr:x}: {hit} and {line}"
                    )
                hit = line
        if hit is not None:
            self._touch(hit)
        return hit

    def has_latest_spec_version(self, addr: int) -> bool:
        """Is there an ``S-M`` version asserting "speculatively modified"?

        Used for the section 5.4 overflow-retrieval assertion: when an S-M
        copy snoops a request it cannot serve, it asserts that the line was
        speculatively modified, so a memory response must arrive as
        ``S-O(0, reqVID + 1)``.

        Fast path: no transition ever *creates* an ``S-M(modVID>0)`` line
        out of another state, so when the maintained count of such lines is
        zero and every resident version of the address is epoch-current
        (i.e. lazy processing would be a no-op), the answer is False without
        touching any line.
        """
        bucket = self._by_base.get(self.line_addr(addr))
        if not bucket:
            return False
        if self._sm_live == 0:
            epoch = self._epoch
            for line in bucket:
                if line.epoch != epoch:
                    break
            else:
                return False
        return any(
            line.state is State.SM and line.mod_vid > 0
            for line in self.versions(addr)
        )

    # ------------------------------------------------------------------
    # Installation and eviction
    # ------------------------------------------------------------------

    def install(self, line: CacheLine) -> List[CacheLine]:
        """Insert a version, evicting as needed.

        An existing version with the same ``(addr, modVID)`` is replaced
        (it is the same conceptual version, e.g. a stale shared copy).
        Returns the evicted lines; the hierarchy decides whether they are
        written back, passed down a level, overflowed to memory, or force
        an abort (section 5.4).
        """
        spec = line.state.speculative
        for existing in list(self._by_base.get(line.addr, ())):
            if existing.mod_vid == line.mod_vid \
                    and existing.state.speculative == spec:
                self._remove(existing)
        index = self.set_index(line.addr)
        lines = self._set_list(index)
        evicted: List[CacheLine] = []
        epoch = self._epoch
        while True:
            # Resolve pending lazy transitions first: committed/aborted
            # versions may free slots without any real eviction.  Skipped
            # when the whole set is epoch-current — the replay would be a
            # no-op for every line.
            if self._set_epochs.get(index) != epoch:
                for candidate in list(lines):
                    self.process_lazy(candidate)
                self._set_epochs[index] = epoch
            if len(lines) < self.assoc:
                break
            victim = self._choose_victim(lines)
            lines.remove(victim)
            self._index_remove(victim)
            evicted.append(victim)
            if victim.state is not State.INVALID:
                # An INVALID fallback victim never really left the
                # hierarchy; counting it would pollute the Table 1 /
                # ablation eviction numbers.
                self.stats.evictions += 1
        # A freshly installed line has no pending events in *this* cache.
        line.seen_aborts = len(self._abort_history)
        line.epoch = epoch
        lines.append(line)
        self._index_add(line)
        self._touch(line)
        return evicted

    def _choose_victim(self, lines: List[CacheLine]) -> CacheLine:
        """LRU within the lowest occupied priority class (section 5.4).

        Callers have already lazily processed every line in the set.
        """
        live = [line for line in lines if line.state is not State.INVALID]
        if not live:
            return lines[0]
        return min(live, key=lambda l: (victim_priority(l), l.lru_tick))

    def drop(self, line: CacheLine) -> None:
        """Remove a version without writeback (silent invalidation)."""
        self._remove(line)

    def all_lines(self) -> Iterable[CacheLine]:
        for lines in self._sets.values():
            yield from list(lines)

    def occupancy(self) -> int:
        """Number of valid versions currently resident."""
        return sum(len(lines) for lines in self._sets.values())

    # ------------------------------------------------------------------
    # Broadcast operations (sections 4.4, 4.6, 5.3)
    # ------------------------------------------------------------------

    def broadcast_commit(self, vid: int) -> None:
        """Record a commit: bump ``LC_VID``.  O(1).

        No per-line VID comparison or state transition happens here — that
        is the entire point of the lazy scheme.  (The paper flash-sets a CB
        bit column; commit idempotence makes even that unnecessary in the
        simulator — see :meth:`process_lazy`.)
        """
        self.lc_vid = vid
        self._epoch += 1
        self.stats.commit_broadcasts += 1

    def broadcast_abort(self) -> None:
        """Record an abort: append to the abort history.  O(1).

        The history entry snapshots the ``LC_VID`` in force when the abort
        arrived, so lazy processing can order each line's pending commit
        transitions before the abort — the exact-ordering refinement of the
        paper's AB-bit scheme (see DESIGN.md).
        """
        self.stats.abort_broadcasts += 1
        self._epoch += 1
        self._abort_history.append(self.lc_vid)

    def vid_reset(self) -> None:
        """Apply the section 4.6 VID reset to this cache.

        Pending lazy transitions are resolved, then every surviving
        speculative line is scrubbed: latest versions become plain M/E
        ("this essentially commits them") and superseded copies die.
        ``LC_VID`` returns to 0.
        """
        self.stats.vid_resets += 1
        self._epoch += 1
        for line in self.all_lines():
            processed = self.process_lazy(line)
            if processed is None:
                continue
            new_state, (mod, high) = reset_transition(
                processed.state, processed.mod_vid, processed.high_vid)
            processed.retag(new_state, mod, high)
            processed.seen_aborts = 0
            if processed.state is State.INVALID:
                self._remove(processed)
        self._abort_history.clear()
        self.lc_vid = 0

    # ------------------------------------------------------------------
    # Debug support
    # ------------------------------------------------------------------

    def check_index_integrity(self) -> None:
        """Assert the fast-path index and counters match the set lists."""
        by_base: Dict[int, List[CacheLine]] = {}
        spec = sm = 0
        for lines in self._sets.values():
            for line in lines:
                by_base.setdefault(line.addr, []).append(line)
                assert line.cache is self, f"{line!r} lost its owner backref"
                if line.state.speculative:
                    spec += 1
                    if line.state is State.SM and line.mod_vid > 0:
                        sm += 1
        recorded = {base: list(bucket) for base, bucket in self._by_base.items()}
        assert by_base == recorded, f"{self.name}: per-base index diverged"
        assert spec == self._spec_lines, (
            f"{self.name}: speculative-line counter {self._spec_lines} != {spec}")
        assert sm == self._sm_live, (
            f"{self.name}: S-M filter counter {self._sm_live} != {sm}")

