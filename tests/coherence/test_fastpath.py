"""Unit tests for the fast-path layer (DESIGN.md, "Fast-path indexing").

The golden equivalence suite (tests/integration/test_fastpath_golden.py)
proves end-to-end bit-identity with the seed simulator; these tests pin the
individual mechanisms — epoch gating, the per-base version index, the
maintained filter counters, the presence map — and the two statistics bug
fixes that rode along (INVALID eviction victims, wrong-path mark pruning).
"""

import pytest

from repro.coherence.cache import VersionedCache
from repro.coherence.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.coherence.line import CacheLine
from repro.coherence.states import State
from repro.core import HMTXSystem, MachineConfig

TINY = dict(num_cores=2, l1_size=512, l1_assoc=2, l2_size=2048, l2_assoc=4)


def make_cache(assoc=2, sets=4):
    return VersionedCache("C", size=assoc * sets * 64, assoc=assoc)


def line(addr, state, mod=0, high=0, data=None):
    return CacheLine(addr, state, data if data is not None else [0] * 8,
                     mod, high)


class TestEpochGating:
    def test_fresh_line_processes_once_then_skips(self):
        cache = make_cache()
        cache.install(line(0x40, State.SM, 2, 2))
        resident = cache.versions(0x40)[0]
        assert resident.epoch == cache._epoch
        before = cache.stats.lazy_commits_processed
        # No broadcast since: repeated touches replay nothing.
        for _ in range(5):
            cache.lookup(0x40, 3)
        assert cache.stats.lazy_commits_processed == before

    def test_broadcast_bumps_epoch_and_forces_processing(self):
        cache = make_cache()
        cache.install(line(0x40, State.SM, 2, 5))
        resident = cache.versions(0x40)[0]
        cache.broadcast_commit(2)
        assert resident.epoch != cache._epoch
        # Next touch applies the commit (modVID 2 drops to 0) lazily.
        hit = cache.lookup(0x40, 3)
        assert hit.mod_vid == 0
        assert hit.epoch == cache._epoch
        assert cache.stats.lazy_commits_processed >= 1

    def test_abort_replay_still_exact_under_gating(self):
        cache = make_cache()
        cache.install(line(0x40, State.SM, 2, 2))
        cache.broadcast_abort()
        # modVID > 0 at abort time: the version dies at next touch.
        assert cache.versions(0x40) == []
        cache.check_index_integrity()


class TestVersionIndex:
    def test_holds_tracks_presence(self):
        cache = make_cache()
        assert not cache.holds(0x44)
        cache.install(line(0x40, State.EXCLUSIVE))
        assert cache.holds(0x44)          # any address within the line
        cache.drop(cache.versions(0x40)[0])
        assert not cache.holds(0x40)

    def test_index_survives_replacement_and_eviction(self):
        cache = make_cache(assoc=2, sets=1)
        cache.install(line(0x00, State.EXCLUSIVE))
        cache.install(line(0x40, State.EXCLUSIVE))
        cache.install(line(0x80, State.EXCLUSIVE))   # evicts the LRU line
        cache.check_index_integrity()
        assert cache.occupancy() == 2

    def test_speculative_counter_follows_retags(self):
        cache = make_cache()
        cache.install(line(0x40, State.SM, 2, 2))
        assert cache.speculative_lines == 1
        resident = cache.versions(0x40)[0]
        resident.retag(State.MODIFIED, 0, 0)
        assert cache.speculative_lines == 0
        cache.check_index_integrity()

    def test_detached_line_retag_is_safe(self):
        free = line(0x40, State.SM, 1, 1)
        free.set_vids(1, 4)               # no owning cache: plain assignment
        assert free.vids == (1, 4)


class TestSmFilter:
    def test_has_latest_after_commit_is_lazy_but_exact(self):
        cache = make_cache()
        cache.install(line(0x40, State.SM, 2, 2))
        assert cache.has_latest_spec_version(0x40)
        assert cache._sm_live == 1
        cache.broadcast_commit(2)
        # The S-M(2,2) version commits to M lazily; the assertion must drop.
        assert not cache.has_latest_spec_version(0x40)
        assert cache._sm_live == 0
        cache.check_index_integrity()

    def test_zero_filter_shortcuts_only_when_epoch_current(self):
        cache = make_cache()
        cache.install(line(0x40, State.SO, 0, 9))
        assert cache._sm_live == 0
        assert not cache.has_latest_spec_version(0x40)


class TestEvictionStats:
    def test_invalid_fallback_victim_not_counted(self):
        cache = make_cache(assoc=1, sets=1)
        cache._inject_line(line(0x40, State.INVALID))
        evicted = cache.install(line(0x80, State.EXCLUSIVE))
        assert [v.state for v in evicted] == [State.INVALID]
        assert cache.stats.evictions == 0

    def test_real_victims_still_counted(self):
        cache = make_cache(assoc=1, sets=1)
        cache.install(line(0x40, State.EXCLUSIVE))
        cache.install(line(0x80, State.EXCLUSIVE))
        assert cache.stats.evictions == 1


class TestPresenceMap:
    def test_holders_mirror_cache_contents(self):
        h = MemoryHierarchy(HierarchyConfig(**TINY))
        h.store(0, 0x100, 0, 7)
        h.load(1, 0x100, 0)
        h.load(1, 0x200, 0)
        h.check_invariants()              # includes the holders cross-check
        holders = h._holders[0x100]
        assert h.l1s[0] in holders and h.l1s[1] in holders

    def test_footprint_counter_matches_walk(self):
        h = MemoryHierarchy(HierarchyConfig(**TINY))
        h.load(0, 0x100, 1)
        h.store(0, 0x140, 2, 9)
        walked = sum(
            64 for cache in h._all_caches()
            for resident in cache.all_lines() if resident.is_speculative())
        assert h.speculative_footprint_bytes() == walked > 0
        h.check_invariants()


class TestWrongPathMarkPruning:
    def _system(self):
        system = HMTXSystem(MachineConfig(**TINY), sla_enabled=False)
        system.thread(0, 0)
        system.thread(1, 1)
        return system

    def test_mark_from_committed_vid_does_not_misattribute(self):
        from repro.errors import MisspeculationError
        from repro.txctl.causes import AbortCause
        system = self._system()
        system.begin_mtx(0, 1)
        system.wrong_path_load(0, 0x100)     # marks the line with VID 1
        system.commit_mtx(0, 1)              # ...which then commits
        assert system._wrong_path_marks == {}
        # A genuine conflict on the same line must not be blamed on the
        # (long-committed) wrong-path mark.
        system.begin_mtx(0, 2)
        system.begin_mtx(1, 3)
        system.load(1, 0x100)                # VID 3 reads: highVID -> 3
        with pytest.raises(MisspeculationError) as info:
            system.store(0, 0x100, 1)        # VID 2 writes: ordering conflict
        assert system.stats.false_aborts_triggered == 0
        assert info.value.cause is AbortCause.CONFLICT

    def test_uncommitted_mark_still_flags_false_abort(self):
        from repro.errors import MisspeculationError
        from repro.txctl.causes import AbortCause
        system = self._system()
        system.begin_mtx(0, 1)
        system.wrong_path_load(0, 0x100)     # marks with VID 1, never commits
        system.begin_mtx(1, 2)
        system.load(1, 0x100)                # VID 2 raises highVID to 2
        with pytest.raises(MisspeculationError) as info:
            system.store(0, 0x100, 1)        # VID 1 write: 1 < highVID 2
        assert system.stats.false_aborts_triggered == 1
        assert info.value.cause is AbortCause.WRONG_PATH
