"""Property-based test: HMTX preserves original sequential semantics.

Hypothesis generates random transactions (each a short list of reads and
writes over a small address pool, pinned to a core) and a random
interleaving of their operations.  Executing the interleaving through the
versioned hierarchy must either

* complete, with every load returning exactly the value the *sequential*
  (VID-ordered) execution produces, and the committed memory state matching
  the sequential final state; or
* raise a misspeculation, after which flushing and re-executing the
  remaining transactions one-by-one still yields the sequential state.

This is the informal argument of section 4.3 turned into an executable
specification, exercised across flow, anti and output dependences in every
order the scheduler could produce.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from hypothesis import given, settings, strategies as st

from repro.coherence import HierarchyConfig, MemoryHierarchy
from repro.errors import MisspeculationError

POOL = [0x1000 + i * 64 for i in range(4)]
NUM_CORES = 3
#: Small caches: examples build hundreds of hierarchies, and a Table 2
#: sized L2 would dominate runtime without adding coverage here.
CONFIG = dict(num_cores=NUM_CORES, l1_size=16 * 64, l1_assoc=4,
              l2_size=128 * 64, l2_assoc=8)


@dataclass(frozen=True)
class TxOp:
    is_write: bool
    addr: int
    value: int


transactions = st.lists(
    st.lists(
        st.builds(
            TxOp,
            is_write=st.booleans(),
            addr=st.sampled_from(POOL),
            value=st.integers(min_value=1, max_value=1_000_000),
        ),
        min_size=1, max_size=5,
    ),
    min_size=1, max_size=5,
)

interleave_seed = st.randoms(use_true_random=False)


def sequential_reference(txs: List[List[TxOp]]) -> Tuple[Dict[int, int], List[int]]:
    """Execute transactions in VID order; return (memory, load values)."""
    memory: Dict[int, int] = {addr: 0 for addr in POOL}
    loads: List[int] = []
    for ops in txs:
        for op in ops:
            if op.is_write:
                memory[op.addr] = op.value
            else:
                loads.append(memory[op.addr])
    return memory, loads


def committed_state(hierarchy: MemoryHierarchy) -> Dict[int, int]:
    return {addr: hierarchy.load(0, addr, 0).value for addr in POOL}


@settings(max_examples=120, deadline=None)
@given(txs=transactions, rng=interleave_seed)
def test_any_interleaving_preserves_sequential_semantics(txs, rng):
    hierarchy = MemoryHierarchy(HierarchyConfig(**CONFIG))
    expected_memory, expected_loads = sequential_reference(txs)

    cursors = [0] * len(txs)        # next op index per transaction
    cores = [i % NUM_CORES for i in range(len(txs))]
    vids = list(range(1, len(txs) + 1))
    observed_loads: Dict[Tuple[int, int], int] = {}  # (tx, op) -> value
    aborted = False

    while True:
        live = [t for t in range(len(txs)) if cursors[t] < len(txs[t])]
        if not live:
            break
        t = rng.choice(live)
        op = txs[t][cursors[t]]
        try:
            if op.is_write:
                hierarchy.store(cores[t], op.addr, vids[t], op.value)
            else:
                result = hierarchy.load(cores[t], op.addr, vids[t])
                observed_loads[(t, cursors[t])] = result.value
            cursors[t] += 1
        except MisspeculationError:
            aborted = True
            hierarchy.abort()
            break
        hierarchy.check_invariants()

    if not aborted:
        # Group-commit in VID order; then state must equal sequential.
        for vid in vids:
            hierarchy.commit(vid)
        # Every load observed the sequential value at its program point.
        seq_memory = {addr: 0 for addr in POOL}
        load_index = 0
        for t, ops in enumerate(txs):
            for i, op in enumerate(ops):
                if op.is_write:
                    seq_memory[op.addr] = op.value
                else:
                    assert observed_loads[(t, i)] == seq_memory[op.addr], \
                        f"tx {t} op {i} read wrong version"
                    load_index += 1
    else:
        # Recovery: re-execute every uncommitted transaction sequentially
        # (the abort flushed all speculative state; VIDs are reused).
        for t, ops in enumerate(txs):
            vid = t + 1
            for op in ops:
                if op.is_write:
                    hierarchy.store(cores[t], op.addr, vid, op.value)
                else:
                    hierarchy.load(cores[t], op.addr, vid)
            hierarchy.commit(vid)

    assert committed_state(hierarchy) == expected_memory
    hierarchy.check_invariants()


@settings(max_examples=60, deadline=None)
@given(txs=transactions, rng=interleave_seed)
def test_interleaving_with_interludes_of_commits(txs, rng):
    """Like the above, but commits happen as soon as a transaction finishes
    and every predecessor committed — the pipelined-commit pattern."""
    hierarchy = MemoryHierarchy(HierarchyConfig(**CONFIG))
    expected_memory, _ = sequential_reference(txs)

    cursors = [0] * len(txs)
    cores = [i % NUM_CORES for i in range(len(txs))]
    committed = 0

    def try_commits():
        nonlocal committed
        while committed < len(txs) and cursors[committed] >= len(txs[committed]):
            hierarchy.commit(committed + 1)
            committed += 1

    aborted = False
    while committed < len(txs):
        live = [t for t in range(len(txs)) if cursors[t] < len(txs[t])]
        if not live:
            try_commits()
            continue
        t = rng.choice(live)
        op = txs[t][cursors[t]]
        try:
            if op.is_write:
                hierarchy.store(cores[t], op.addr, t + 1, op.value)
            else:
                hierarchy.load(cores[t], op.addr, t + 1)
            cursors[t] += 1
            try_commits()
        except MisspeculationError:
            aborted = True
            hierarchy.abort()
            break

    if aborted:
        for t in range(committed, len(txs)):
            for op in txs[t]:
                if op.is_write:
                    hierarchy.store(cores[t], op.addr, t + 1, op.value)
                else:
                    hierarchy.load(cores[t], op.addr, t + 1)
            hierarchy.commit(t + 1)

    assert committed_state(hierarchy) == expected_memory
