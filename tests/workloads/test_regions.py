"""Address-space hygiene: no two regions of any benchmark may overlap.

Region collisions would silently alias unrelated data structures through
the cache hierarchy — a bug class worth guarding against structurally.
"""

import pytest

from repro.cpu.interrupts import KERNEL_REGION_BASE
from repro.workloads import BENCHMARK_NAMES, LinkedListWorkload, make_benchmark
from repro.workloads.common import Region
from repro.workloads.pipeline import PipelinedBenchmark


def regions_of(workload) -> dict:
    """All named address regions a workload instance declares."""
    found = {}
    for name, value in vars(workload).items():
        if isinstance(value, Region) and value.size > 0:
            found[name] = (value.base, value.end)
    if isinstance(workload, PipelinedBenchmark):
        found["produced_slot"] = (workload.produced_slot,
                                  workload.produced_slot + 64)
    if isinstance(workload, LinkedListWorkload):
        found["nodes"] = (workload.node_region,
                          workload.node_region + workload.nodes * 64)
        found["table"] = (workload.table_region,
                          workload.table_region + workload.work_reads * 32 * 8)
        found["produced"] = (workload.produced_node,
                             workload.produced_node + 64)
    return found


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_regions_disjoint(name):
    workload = make_benchmark(name)
    regions = regions_of(workload)
    assert regions, f"{name} declares no regions?"
    spans = sorted(regions.items(), key=lambda kv: kv[1][0])
    for (name_a, (_, end_a)), (name_b, (start_b, _)) in zip(spans, spans[1:]):
        assert end_a <= start_b, \
            f"{name}: regions {name_a!r} and {name_b!r} overlap"


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_regions_avoid_kernel_space(name):
    """Interrupt handlers use a dedicated region (section 5.2 tests rely
    on it being disjoint from every workload)."""
    workload = make_benchmark(name)
    for region_name, (start, end) in regions_of(workload).items():
        assert end <= KERNEL_REGION_BASE or start >= KERNEL_REGION_BASE + (1 << 20), \
            f"{name}.{region_name} collides with the kernel region"


def test_linkedlist_regions_disjoint():
    workload = LinkedListWorkload(nodes=64)
    spans = sorted(regions_of(workload).values())
    for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
        assert end_a <= start_b


def test_compiled_workload_regions_disjoint():
    from repro.compiler import Loop, compile_loop
    loop = Loop("hygiene", iterations=8)
    loop.scalar("a"); loop.scalar("b")
    loop.array("x"); loop.array("y")
    loop.statement("s", reads=("a",), writes=("a", "x"),
                   compute=lambda i, e: {"a": e["a"] + 1, "x": i})
    loop.statement("t", reads=("b", "x"), writes=("b", "y"),
                   compute=lambda i, e: {"b": e["b"] + e["x"], "y": i})
    workload = compile_loop(loop)
    addrs = set()
    for name in ("a", "b"):
        addr = workload.addr_of(name, 0)
        assert addr not in addrs
        addrs.add(addr)
    for name in ("x", "y"):
        for i in range(8):
            addr = workload.addr_of(name, i)
            assert addr not in addrs
            addrs.add(addr)
