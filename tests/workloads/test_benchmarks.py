"""Tests for the 8 benchmark models: correctness under every system,
golden-mirror fidelity, and Table 1 characteristics."""

import pytest

from repro.runtime.paradigms import run_sequential, run_workload
from repro.smtx import ValidationMode, run_smtx
from repro.workloads import (
    BENCHMARK_NAMES,
    PAPER_TABLE1,
    SMTX_COMPARABLE,
    all_benchmarks,
    executor_factory_for,
    make_benchmark,
)

SMALL = 0.4  # scale factor keeping unit tests fast


@pytest.fixture(scope="module")
def hmtx_runs():
    """One HMTX run per benchmark at reduced scale (shared by tests)."""
    runs = {}
    for name in BENCHMARK_NAMES:
        workload = make_benchmark(name, SMALL)
        result = run_workload(workload,
                              executor_factory=executor_factory_for(workload))
        runs[name] = (workload, result)
    return runs


class TestSuiteStructure:
    def test_eight_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 8

    def test_names_match_table1(self):
        assert set(BENCHMARK_NAMES) == set(PAPER_TABLE1)

    def test_six_smtx_comparable(self):
        """crafty and ispell have no SMTX comparison point (section 6.1)."""
        assert len(SMTX_COMPARABLE) == 6
        assert "186.crafty" not in SMTX_COMPARABLE
        assert "ispell" not in SMTX_COMPARABLE

    def test_paradigms_match_table1(self):
        for name, workload in all_benchmarks(SMALL).items():
            assert workload.paradigm == PAPER_TABLE1[name].paradigm

    def test_hot_loop_fractions_match_table1(self):
        for name, workload in all_benchmarks(SMALL).items():
            assert workload.hot_loop_fraction * 100 == \
                pytest.approx(PAPER_TABLE1[name].hot_loop_pct, abs=0.1)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            make_benchmark("999.nonesuch")

    def test_scaling_changes_iterations(self):
        small = make_benchmark("ispell", 0.25)
        big = make_benchmark("ispell", 1.0)
        assert small.iterations < big.iterations


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestGoldenMirrors:
    """Each model's pure-Python golden must equal its simulated execution."""

    def test_sequential_matches_golden(self, name):
        workload = make_benchmark(name, SMALL)
        result = run_sequential(
            workload, executor_factory=executor_factory_for(workload))
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestHmtxExecution:
    def test_parallel_matches_golden(self, name, hmtx_runs):
        workload, result = hmtx_runs[name]
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_zero_misspeculation(self, name, hmtx_runs):
        """Section 6.3: no misspeculation in any evaluated benchmark."""
        _, result = hmtx_runs[name]
        assert result.system.stats.aborted == 0

    def test_every_iteration_is_a_transaction(self, name, hmtx_runs):
        workload, result = hmtx_runs[name]
        assert result.system.stats.committed == workload.iterations

    def test_maximal_validation(self, name, hmtx_runs):
        """Every speculative load/store inside the transaction enters the
        read/write sets — the paper's worst-case validation posture."""
        workload, result = hmtx_runs[name]
        stats = result.system.stats
        assert stats.spec_loads > 0
        assert stats.spec_stores > 0
        assert all(t.spec_accesses > 0 for t in stats.transactions)


@pytest.mark.parametrize("name", SMTX_COMPARABLE)
class TestSmtxExecution:
    def test_smtx_minimal_matches_golden(self, name):
        workload = make_benchmark(name, SMALL)
        result = run_smtx(workload, mode=ValidationMode.MINIMAL,
                          executor_factory=executor_factory_for(workload))
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)


class TestTable1Characteristics:
    def test_ispell_needs_most_slas(self, hmtx_runs):
        """Table 1: ispell 13.0% of loads, the suite's highest."""
        fractions = {name: run.system.stats.sla_fraction_of_spec_loads
                     for name, (_, run) in hmtx_runs.items()}
        assert max(fractions, key=fractions.get) == "ispell"

    def test_dense_benchmarks_need_fewest_slas(self, hmtx_runs):
        fractions = {name: run.system.stats.sla_fraction_of_spec_loads
                     for name, (_, run) in hmtx_runs.items()}
        assert fractions["456.hmmer"] < 0.05
        assert fractions["052.alvinn"] < 0.05

    def test_li_has_largest_transactions(self, hmtx_runs):
        accesses = {name: run.system.stats.avg_spec_accesses_per_tx
                    for name, (_, run) in hmtx_runs.items()}
        assert max(accesses, key=accesses.get) == "130.li"

    def test_ispell_has_smallest_transactions(self, hmtx_runs):
        accesses = {name: run.system.stats.avg_spec_accesses_per_tx
                    for name, (_, run) in hmtx_runs.items()}
        assert min(accesses, key=accesses.get) == "ispell"

    def test_bzip2_has_largest_sets(self, hmtx_runs):
        """Figure 9: 256.bzip2's combined set dwarfs the others."""
        sizes = {name: run.system.stats.avg_combined_set_kb
                 for name, (_, run) in hmtx_runs.items()}
        assert max(sizes, key=sizes.get) == "256.bzip2"

    def test_alvinn_is_the_one_doall_benchmark(self, hmtx_runs):
        paradigms = {name: run.paradigm for name, (_, run) in hmtx_runs.items()}
        assert paradigms.pop("052.alvinn") == "DOALL"
        assert set(paradigms.values()) == {"PS-DSWP"}
