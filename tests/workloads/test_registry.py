"""Name-keyed workload registry: registration, lookup, back-compat."""

from __future__ import annotations

import pytest

from repro.workloads import make_workload, register_workload, workload_names
from repro.workloads.suite import BENCHMARK_NAMES, make_benchmark


class TestRegistration:
    def test_all_benchmarks_and_extras_listed(self):
        names = workload_names()
        for name in BENCHMARK_NAMES:
            assert name in names
        for name in ("contended-list", "capacity-hog",
                     "svc-kv", "svc-kv-read", "svc-oltp", "svc-adversary"):
            assert name in names

    def test_names_sorted_and_stable(self):
        assert list(workload_names()) == sorted(workload_names())
        assert workload_names() == workload_names()

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError):
            register_workload("130.li", lambda scale: None)

    def test_duplicate_of_lazy_entry_raises(self):
        with pytest.raises(ValueError):
            register_workload("svc-kv", lambda scale: None)

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            make_workload("no-such-workload")


class TestLookup:
    def test_make_workload_builds_benchmarks(self):
        workload = make_workload("130.li", 0.5)
        assert workload.name == "130.li"

    def test_make_workload_builds_contended(self):
        workload = make_workload("contended-list", 1.0)
        assert workload.name == "contended-list"
        # The legacy construction parameters are preserved exactly
        # (the contention-sweep goldens depend on them).
        assert workload.nodes == 24
        assert workload.rmw_per_iteration == 2

    def test_factory_options_forwarded(self):
        workload = make_workload("contended-list", 1.0, rmw_per_iteration=5)
        assert workload.rmw_per_iteration == 5

    def test_make_benchmark_rejects_non_benchmark_names(self):
        # Back-compat: benchmark lookups stay restricted to Table 1.
        with pytest.raises(KeyError):
            make_benchmark("999.nonesuch")
        with pytest.raises(KeyError):
            make_benchmark("contended-list")

    def test_make_benchmark_still_builds_suite(self):
        for name in BENCHMARK_NAMES:
            assert make_benchmark(name, 0.25).name == name
