"""Tests for the SMTX software-TM baseline."""

import pytest

from repro.core import MachineConfig
from repro.errors import MisspeculationError, TransactionUsageError
from repro.runtime.paradigms import run_sequential
from repro.smtx import (
    SMTXSystem,
    SmtxCosts,
    SmtxMemory,
    ValidationMode,
    run_smtx,
    smtx_whole_program_speedup,
    validation_predicate_for,
)
from repro.smtx.memory import ValidationLog
from repro.workloads.linkedlist import LinkedListWorkload

ADDR = 0x4000


class TestSmtxMemory:
    def test_committed_read_write(self):
        mem = SmtxMemory()
        mem.write(0, ADDR, 5)
        assert mem.read(0, ADDR) == 5

    def test_buffered_writes_invisible_to_committed(self):
        mem = SmtxMemory()
        mem.write(0, ADDR, 5)
        mem.write(3, ADDR, 9)
        assert mem.read(0, ADDR) == 5
        assert mem.read(3, ADDR) == 9

    def test_uncommitted_value_forwarding(self):
        mem = SmtxMemory()
        mem.write(2, ADDR, 22)
        assert mem.read(5, ADDR) == 22  # later VID sees earlier buffer
        assert mem.read(1, ADDR) == 0   # earlier VID does not

    def test_newest_eligible_buffer_wins(self):
        mem = SmtxMemory()
        mem.write(2, ADDR, 22)
        mem.write(4, ADDR, 44)
        assert mem.read(3, ADDR) == 22
        assert mem.read(9, ADDR) == 44

    def test_commit_applies_in_order(self):
        mem = SmtxMemory()
        mem.write(1, ADDR, 11)
        assert mem.commit(1) == 1
        assert mem.read(0, ADDR) == 11

    def test_abort_discards_buffers(self):
        mem = SmtxMemory()
        mem.write(1, ADDR, 11)
        mem.abort_all()
        assert mem.read(5, ADDR) == 0


class TestValidationLog:
    def test_validation_passes_when_values_stable(self):
        mem, log = SmtxMemory(), ValidationLog()
        mem.write(0, ADDR, 5)
        log.log_read(1, ADDR, 5)
        assert log.validate(1, mem) is None

    def test_validation_catches_changed_value(self):
        mem, log = SmtxMemory(), ValidationLog()
        mem.write(0, ADDR, 5)
        log.log_read(1, ADDR, 5)
        mem.write(0, ADDR, 6)   # someone changed committed state
        violation = log.validate(1, mem)
        assert violation is not None
        assert violation.addr == ADDR

    def test_entry_counting(self):
        log = ValidationLog()
        log.log_read(1, ADDR, 0)
        log.log_write(1, ADDR, 1)
        assert log.entries(1) == 2
        log.pop(1)
        assert log.entries(1) == 0


@pytest.fixture
def system():
    sys = SMTXSystem(MachineConfig(num_cores=3))
    sys.thread(0, core=0)
    sys.thread(1, core=1)
    return sys


class TestSMTXSystem:
    def test_transactional_store_load(self, system):
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.store(0, ADDR, 7)
        assert system.load(0, ADDR).value == 7

    def test_forwarding_between_threads(self, system):
        v1 = system.allocate_vid()
        system.begin_mtx(0, v1)
        system.store(0, ADDR, 7)
        system.begin_mtx(1, v1)
        result = system.load(1, ADDR)
        assert result.value == 7

    def test_commit_publishes(self, system):
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.store(0, ADDR, 7)
        system.commit_mtx(0, vid)
        assert system.load(1, ADDR).value == 7

    def test_commit_order_enforced(self, system):
        v1, v2 = system.allocate_vid(), system.allocate_vid()
        system.begin_mtx(0, v1)
        system.begin_mtx(1, v2)
        with pytest.raises(TransactionUsageError):
            system.commit_mtx(1, v2)

    def test_validated_accesses_cost_more(self, system):
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        validated = system.load(0, ADDR).latency
        system.begin_mtx(0, 0)
        raw = system.load(0, ADDR).latency
        assert validated > raw

    def test_commit_process_accumulates_work(self, system):
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        for i in range(10):
            system.store(0, ADDR + 8 * i, i)
        before = system.commit_process_cycles
        system.commit_mtx(0, vid)
        delta = system.commit_process_cycles - before
        assert delta >= 10 * system.costs.validate_entry

    def test_real_conflict_detected_at_validation(self, system):
        """A read whose committed value changed fails validation."""
        system.memory.write(0, ADDR, 5)
        v1, v2 = system.allocate_vid(), system.allocate_vid()
        system.begin_mtx(1, v2)
        system.load(1, ADDR)                # v2 reads 5, logged
        system.begin_mtx(0, v1)
        system.store(0, ADDR, 99)           # v1 writes (later in time)
        system.commit_mtx(0, v1)
        with pytest.raises(MisspeculationError):
            system.commit_mtx(1, v2)

    def test_wrong_path_loads_are_free_of_logging(self, system):
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.wrong_path_load(0, ADDR)
        assert system.log.entries(vid) == 0

    def test_no_vid_reset_in_software(self, system):
        assert not system.ready_for_vid_reset()
        with pytest.raises(TransactionUsageError):
            system.vid_reset()


class TestValidationPredicates:
    def test_maximal_validates_everything(self):
        pred = validation_predicate_for(LinkedListWorkload(), ValidationMode.MAXIMAL)
        assert pred(0x123456, False)

    def test_minimal_only_forwarding_slots(self):
        workload = LinkedListWorkload()
        pred = validation_predicate_for(workload, ValidationMode.MINIMAL)
        assert pred(workload.produced_node, True)
        assert not pred(workload.node_region, False)

    def test_substantial_covers_shared_regions(self):
        workload = LinkedListWorkload()
        pred = validation_predicate_for(workload, ValidationMode.SUBSTANTIAL)
        assert pred(workload.node_region + 64, False)
        assert not pred(workload.table_region, False)


class TestRunSmtx:
    @pytest.fixture(scope="class")
    def baseline(self):
        workload = LinkedListWorkload(nodes=24)
        seq = run_sequential(workload)
        return workload.expected_result(seq.system), seq.cycles

    def test_correct_result_all_modes(self, baseline):
        expected, _ = baseline
        for mode in ValidationMode:
            workload = LinkedListWorkload(nodes=24)
            result = run_smtx(workload, mode=mode)
            assert workload.observed_result(result.system) == expected, mode

    def test_validation_cost_ordering(self, baseline):
        """More validation -> slower: the Figure 2 monotonicity."""
        _, seq_cycles = baseline
        cycles = {}
        for mode in ValidationMode:
            workload = LinkedListWorkload(nodes=24)
            cycles[mode] = run_smtx(workload, mode=mode).cycles
        assert cycles[ValidationMode.MINIMAL] \
            <= cycles[ValidationMode.SUBSTANTIAL] \
            <= cycles[ValidationMode.MAXIMAL]

    def test_commit_process_takes_a_core(self):
        workload = LinkedListWorkload(nodes=12)
        result = run_smtx(workload, MachineConfig(num_cores=4))
        # Worker threads only ever use cores 0..2.
        assert result.system.config.num_cores == 3

    def test_needs_two_cores(self):
        with pytest.raises(ValueError):
            run_smtx(LinkedListWorkload(nodes=4), MachineConfig(num_cores=1))

    def test_paradigm_label(self):
        result = run_smtx(LinkedListWorkload(nodes=12))
        assert result.paradigm.startswith("SMTX-")


class TestWholeProgramProjection:
    def test_amdahl(self):
        workload = LinkedListWorkload()
        workload.hot_loop_fraction = 0.5
        assert smtx_whole_program_speedup(workload, 2.0) == pytest.approx(4 / 3)

    def test_full_fraction_passthrough(self):
        workload = LinkedListWorkload()
        workload.hot_loop_fraction = 1.0
        assert smtx_whole_program_speedup(workload, 2.0) == pytest.approx(2.0)
