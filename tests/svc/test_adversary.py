"""Adversarial generator: seeded determinism, survivors, replay gate."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.engine import RunRequest, SweepEngine
from repro.svc.adversary import (
    SURVIVOR_SCHEMA,
    AdversarialWorkload,
    Genome,
    evaluate_genome,
    load_survivor,
    replay_survivor,
    search,
    survivor_workload,
    write_survivors,
)
from repro.workloads import make_workload
from repro.workloads.common import Lcg

SURVIVOR_DIR = pathlib.Path(__file__).parent / "survivors"
SURVIVORS = sorted(SURVIVOR_DIR.glob("*.json"))


class TestGenome:
    def test_clamped_respects_bounds(self):
        g = Genome(hot_keys=999, hot_pct=-5, footprint=0,
                   iterations=10_000).clamped()
        assert g.hot_keys == 32
        assert g.hot_pct == 0
        assert g.footprint == 1
        assert g.iterations == 96

    def test_mutate_stays_in_bounds_and_is_deterministic(self):
        rng1, rng2 = Lcg(9), Lcg(9)
        g1, g2 = Genome(), Genome()
        for _ in range(200):
            g1 = g1.mutate(rng1)
            g2 = g2.mutate(rng2)
            assert g1 == g2
            assert g1 == g1.clamped()

    def test_dict_roundtrip(self):
        g = Genome(hot_keys=3, rmw_pct=80)
        assert Genome.from_dict(g.to_dict()) == g

    def test_from_dict_rejects_unknown_genes(self):
        with pytest.raises(ValueError):
            Genome.from_dict({"hot_keys": 2, "nope": 1})


class TestEvaluation:
    def test_evaluation_is_deterministic(self):
        g = Genome(iterations=16)
        assert evaluate_genome(g) == evaluate_genome(g)

    def test_metrics_shape(self):
        metrics = evaluate_genome(Genome(iterations=12))
        for key in ("score", "aborts_per_commit", "escalations",
                    "fallback_entries", "vid_reset_share",
                    "abort_replay_share", "commit_stall_share",
                    "correct", "commits", "aborts", "cycles"):
            assert key in metrics
        assert metrics["correct"] is True
        assert metrics["score"] >= 0


class TestSearch:
    def test_equal_seeds_byte_identical(self):
        a = search(seed=11, rounds=2, population=2)
        b = search(seed=11, rounds=2, population=2)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_distinct_seeds_diverge(self):
        a = search(seed=11, rounds=2, population=2)
        b = search(seed=12, rounds=2, population=2)
        assert json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True)

    def test_best_never_below_base_genome(self):
        report = search(seed=11, rounds=2, population=2)
        base_score = report["leaderboard"][-1]["score"]
        assert report["best"]["score"] >= base_score

    def test_write_survivors_roundtrip(self, tmp_path):
        report = search(seed=11, rounds=1, population=2)
        paths = write_survivors(report, tmp_path, count=1)
        assert len(paths) == 1
        data = load_survivor(paths[0])
        assert data["schema"] == SURVIVOR_SCHEMA
        workload = survivor_workload(paths[0])
        assert isinstance(workload, AdversarialWorkload)
        assert workload.genome == Genome.from_dict(data["genome"])

    def test_load_survivor_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope/1"}))
        with pytest.raises(ValueError):
            load_survivor(path)


@pytest.mark.skipif(not SURVIVORS, reason="no committed survivors")
class TestCommittedSurvivors:
    def test_at_least_two_survivors_committed(self):
        assert len(SURVIVORS) >= 2

    @pytest.mark.parametrize("path", SURVIVORS, ids=lambda p: p.stem)
    def test_replay_reproduces_recorded_abort_rate(self, path):
        result = replay_survivor(path)
        assert result["correct"]
        assert result["ok"], result

    @pytest.mark.parametrize("path", SURVIVORS, ids=lambda p: p.stem)
    def test_registry_resolves_survivor_names(self, path):
        workload = make_workload(f"svc-survivor:{path}")
        data = json.loads(path.read_text())
        assert workload.genome == Genome.from_dict(data["genome"])

    def test_engine_replay_jobs_invariant(self):
        requests = [RunRequest(workload=f"svc-survivor:{path}",
                               system=system, paradigm="DOALL",
                               policy="backoff")
                    for path in SURVIVORS for system in ("hmtx", "smtx")]
        serial = [r.to_report() for r in SweepEngine(jobs=1).run(requests)]
        pooled = [r.to_report() for r in SweepEngine(jobs=2).run(requests)]
        assert serial == pooled
        assert all(r["correct"] for r in serial)
