"""Tail-latency artifact: engine-jobs invariance and report shape."""

from __future__ import annotations

import json

from repro.svc.latency import (
    LATENCY_SCHEMA,
    QUANTILES,
    latency_report,
    latency_spec,
    render_json,
    render_text,
)

_SCALE = 0.1


class TestSpec:
    def test_one_observed_request_per_system(self):
        spec = latency_spec(scale=_SCALE, systems=("hmtx", "oracle"))
        assert [r.system for r in spec.requests] == ["hmtx", "oracle"]
        assert all(r.observe for r in spec.requests)
        assert all(dict(r.options)["seed"] == 42 for r in spec.requests)

    def test_seed_is_part_of_request_identity(self):
        a = latency_spec(scale=_SCALE, seed=1).requests[0]
        b = latency_spec(scale=_SCALE, seed=2).requests[0]
        assert a.key() != b.key()


class TestReport:
    def test_jobs_do_not_change_the_artifact(self):
        serial = latency_report(scale=_SCALE, jobs=1)
        pooled = latency_report(scale=_SCALE, jobs=2)
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(pooled, sort_keys=True)

    def test_report_shape_and_quantile_monotonicity(self):
        report = latency_report(scale=_SCALE, systems=("hmtx", "smtx"))
        assert report["schema"] == LATENCY_SCHEMA
        assert [row["system"] for row in report["rows"]] == ["hmtx", "smtx"]
        labels = [label for _, label in QUANTILES]
        for row in report["rows"]:
            assert row["correct"]
            for key in ("commit_latency", "queue_wait"):
                dist = row[key]
                assert dist["count"] > 0
                values = [dist[label] for label in labels]
                assert values == sorted(values)
                assert dist[labels[-1]] <= dist["max"]

    def test_equal_seeds_byte_identical_output(self):
        a = render_json(latency_report(scale=_SCALE, seed=42))
        b = render_json(latency_report(scale=_SCALE, seed=42))
        assert a == b

    def test_distinct_seeds_change_the_artifact(self):
        a = latency_report(scale=_SCALE, seed=42)
        b = latency_report(scale=_SCALE, seed=43)
        assert json.dumps(a, sort_keys=True) != \
            json.dumps(b, sort_keys=True)

    def test_render_text_tables(self):
        report = latency_report(scale=_SCALE, systems=("hmtx",))
        text = render_text(report)
        assert "svc commit latency" in text
        assert "svc queue wait" in text
        assert "p999" in text
        assert "hmtx" in text
