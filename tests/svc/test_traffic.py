"""Determinism and distribution properties of the svc traffic models.

The seeded-determinism contract is the foundation of the whole svc
subsystem (byte-identical artifacts, reproducible survivors), so it is
pinned with hypothesis property tests: equal seeds give identical
streams, and the generators never touch the ``random`` module's global
state.  Seed *divergence* is checked against fixed pairs rather than
searched for — distinct LCG streams can legitimately collide on short
projections.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.svc.traffic import BurstyArrivals, ZipfianSampler

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


class TestZipfianSampler:
    def test_rejects_empty_keyspace(self):
        with pytest.raises(ValueError):
            ZipfianSampler(0)

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, n=st.integers(min_value=1, max_value=2000))
    def test_equal_seeds_identical_streams(self, seed, n):
        a = ZipfianSampler(n, seed=seed).sample_many(50)
        b = ZipfianSampler(n, seed=seed).sample_many(50)
        assert a == b

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, n=st.integers(min_value=2, max_value=5000))
    def test_samples_in_range(self, seed, n):
        for rank in ZipfianSampler(n, seed=seed).sample_many(100):
            assert 0 <= rank < n

    def test_distinct_seeds_diverge(self):
        for a, b in ((1, 2), (42, 43), (7, 1 << 20)):
            sa = ZipfianSampler(1000, seed=a).sample_many(200)
            sb = ZipfianSampler(1000, seed=b).sample_many(200)
            assert sa != sb, (a, b)

    def test_skew_favours_low_ranks(self):
        # Zipf(0.99) over 10^4 keys: rank 0 alone should absorb a few
        # percent of draws, and the top decile a clear majority.
        samples = ZipfianSampler(10_000, seed=7).sample_many(2000)
        top_decile = sum(1 for s in samples if s < 1000)
        assert samples.count(0) >= 20
        assert top_decile / len(samples) > 0.5

    def test_theta_zero_is_roughly_uniform(self):
        samples = ZipfianSampler(100, theta=0.0, seed=11).sample_many(5000)
        assert samples.count(0) < 5000 * 0.05

    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS)
    def test_does_not_touch_random_module(self, seed):
        state = random.getstate()
        ZipfianSampler(500, seed=seed).sample_many(100)
        assert random.getstate() == state


class TestBurstyArrivals:
    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, count=st.integers(min_value=1, max_value=300))
    def test_equal_seeds_identical_schedules(self, seed, count):
        a = BurstyArrivals(seed).schedule(count)
        b = BurstyArrivals(seed).schedule(count)
        assert a == b

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, count=st.integers(min_value=1, max_value=300))
    def test_schedule_nondecreasing_and_sized(self, seed, count):
        schedule = BurstyArrivals(seed).schedule(count)
        assert len(schedule) == count
        assert all(b >= a for a, b in zip(schedule, schedule[1:]))
        assert schedule[0] >= 0

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS)
    def test_schedule_prefix_stable(self, seed):
        # Asking for more arrivals extends the schedule; it never
        # rewrites history (workload scale changes keep early arrivals).
        short = BurstyArrivals(seed).schedule(50)
        long = BurstyArrivals(seed).schedule(120)
        assert long[:50] == short

    def test_distinct_seeds_diverge(self):
        for a, b in ((1, 2), (42, 43), (9, 1 << 19)):
            assert BurstyArrivals(a).schedule(100) != \
                BurstyArrivals(b).schedule(100), (a, b)

    def test_bursts_are_denser_than_steady_phases(self):
        gaps = BurstyArrivals(3, base_gap=64, burst_gap=8,
                              idle_gap=600).gaps(400)
        small = sum(1 for g in gaps if g <= 12)
        large = sum(1 for g in gaps if g >= 32)
        assert small > 0 and large > 0

    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS)
    def test_does_not_touch_random_module(self, seed):
        state = random.getstate()
        BurstyArrivals(seed).schedule(200)
        assert random.getstate() == state
