"""KV/OLTP workload family: correctness, determinism, registry wiring."""

from __future__ import annotations

import pytest

from repro.experiments.engine import RunRequest, SweepEngine, request_options
from repro.runtime.paradigms import run_workload
from repro.svc.kvstore import KVStoreWorkload, kv_workload, oltp_workload
from repro.workloads import make_workload, workload_names


def _small(**kwargs):
    params = dict(requests=16, keys=512, seed=42)
    params.update(kwargs)
    return KVStoreWorkload(**params)


class TestConstruction:
    def test_mix_must_sum_to_100(self):
        with pytest.raises(ValueError):
            _small(mix=(50, 30, 10, 0))

    def test_plans_deterministic_for_equal_seeds(self):
        assert _small().plans() == _small().plans()
        assert _small().arrival_schedule() == _small().arrival_schedule()

    def test_plans_diverge_across_seeds(self):
        assert _small(seed=1).plans() != _small(seed=2).plans()

    def test_arrivals_nondecreasing(self):
        schedule = _small().arrival_schedule()
        assert all(b >= a for a, b in zip(schedule, schedule[1:]))

    def test_transfer_mix_produces_multi_key_transactions(self):
        workload = _small(mix=(0, 0, 0, 100))
        for plan in workload.plans():
            assert plan.kind == "transfer"
            assert len(plan.ops) == 3
            # A transfer must move value between two distinct keys.
            assert plan.ops[1][1] != plan.ops[2][1]


class TestCorrectness:
    @pytest.mark.parametrize("system", ["hmtx", "smtx", "oracle"])
    def test_kv_preserves_sequential_semantics(self, system):
        record = SweepEngine().run_one(RunRequest(
            workload="svc-kv", system=system, scale=0.1,
            paradigm="DOALL", options=request_options(seed=42)))
        assert record.correct
        assert record.committed > 0

    def test_oltp_preserves_sequential_semantics_on_hmtx(self):
        workload = oltp_workload(scale=0.1, seed=42)
        result = run_workload(workload, paradigm="DOALL")
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_sequential_run_matches_expected(self):
        workload = _small()
        result = run_workload(workload, paradigm="Sequential")
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)


class TestRegistry:
    def test_svc_names_registered(self):
        names = workload_names()
        for name in ("svc-kv", "svc-kv-read", "svc-oltp", "svc-adversary"):
            assert name in names

    def test_make_workload_passes_seed_option(self):
        a = make_workload("svc-kv", 0.1, seed=1)
        b = make_workload("svc-kv", 0.1, seed=1)
        c = make_workload("svc-kv", 0.1, seed=2)
        assert a.plans() == b.plans()
        assert a.plans() != c.plans()

    def test_factory_scale_shrinks_requests(self):
        assert kv_workload(scale=0.1).iterations < \
            kv_workload(scale=1.0).iterations


class TestLatencyObservability:
    def test_observed_run_carries_svc_histograms(self):
        record = SweepEngine().run_one(RunRequest(
            workload="svc-kv", system="hmtx", scale=0.1,
            paradigm="DOALL", observe=True,
            options=request_options(seed=42)))
        histograms = record.obs_digest["histograms"]
        assert "svc_queue_wait_cycles" in histograms
        assert "svc_commit_latency_cycles" in histograms
        sojourn = histograms["svc_commit_latency_cycles"]
        # Every committed request contributes exactly one sojourn sample.
        assert sojourn["count"] == record.committed

    def test_unobserved_non_svc_runs_have_no_svc_series(self):
        record = SweepEngine().run_one(RunRequest(
            workload="130.li", system="hmtx", scale=0.1, observe=True))
        histograms = record.obs_digest["histograms"]
        assert "svc_queue_wait_cycles" not in histograms
        assert "svc_commit_latency_cycles" not in histograms
