"""Tests for the automatic speculative parallelizer (section 8's compiler)."""

import pytest

from repro.compiler import (
    Loop,
    PartitionError,
    build_pdg,
    carried_dependences,
    compile_loop,
    condense,
    may_dependences,
    plan_pipeline,
    remove_speculated,
)
from repro.runtime.paradigms import run_ps_dswp, run_sequential
from repro.smtx import ValidationMode, run_smtx


def chase_loop(iterations=24, rare_prob=0.02, manifest_every=None):
    """The canonical target: pointer chase -> parallel work -> reduction.

    ``manifest_every``: if set, the parallel stage *actually* writes the
    speculated location every that-many iterations (testing misspeculation
    detection and recovery); otherwise the may-dependence never manifests.
    """
    loop = Loop("chase", iterations=iterations)
    loop.scalar("cursor", init=7)
    loop.array("fetched")
    loop.array("result")
    loop.scalar("checksum")
    loop.scalar("shared_mode", init=1)

    loop.statement("advance", reads=("cursor",), writes=("cursor",),
                   compute=lambda i, env: {"cursor": (env["cursor"] * 13 + 7) % 4096},
                   work=12, branches=2)
    loop.statement("fetch", reads=("cursor",), writes=("fetched",),
                   compute=lambda i, env: {"fetched": env["cursor"] ^ (i << 4)},
                   work=8)

    def process(i, env):
        out = {"result": (env["fetched"] * 31 + i * env["shared_mode"]) & 0xFFFF}
        if manifest_every and i % manifest_every == manifest_every - 1:
            out["shared_mode"] = 1          # the rare write manifests
        return out

    loop.statement("process", reads=("fetched", "shared_mode"),
                   writes=("result",), maybe_writes={"shared_mode": rare_prob},
                   compute=process, work=250, branches=5)
    loop.statement("emit", reads=("checksum", "result"), writes=("checksum",),
                   compute=lambda i, env: {
                       "checksum": (env["checksum"] * 33 + env["result"]) & 0xFFFFFFFF},
                   ordered=True, work=30)
    return loop


class TestLoopIR:
    def test_interpret_reference(self):
        loop = chase_loop(iterations=4)
        state = loop.interpret()
        assert state["cursor"] != 7           # the chase advanced
        assert len(state["result"]) == 4
        assert state["checksum"] != 0

    def test_duplicate_location_rejected(self):
        loop = Loop("dup", 2)
        loop.scalar("x")
        with pytest.raises(ValueError):
            loop.scalar("x")

    def test_duplicate_statement_rejected(self):
        loop = Loop("dup", 2)
        loop.scalar("x")
        loop.statement("s", writes=("x",), compute=lambda i, e: {"x": 1})
        with pytest.raises(ValueError):
            loop.statement("s", writes=("x",), compute=lambda i, e: {"x": 1})

    def test_undeclared_location_rejected(self):
        loop = Loop("bad", 2)
        with pytest.raises(ValueError):
            loop.statement("s", reads=("ghost",), compute=lambda i, e: {})

    def test_missing_write_detected(self):
        loop = Loop("bad", 2)
        loop.scalar("x")
        loop.statement("s", writes=("x",), compute=lambda i, e: {})
        with pytest.raises(ValueError):
            loop.interpret()

    def test_maybe_write_may_be_absent(self):
        loop = Loop("ok", 3)
        loop.scalar("x", init=5)
        loop.statement("s", reads=("x",), maybe_writes={"x": 0.5},
                       compute=lambda i, e: {"x": 9} if i == 1 else {})
        assert loop.interpret()["x"] == 9


class TestPdg:
    def test_array_dependences_are_intra_iteration(self):
        pdg = build_pdg(chase_loop())
        for dep in carried_dependences(pdg):
            location = dep.location
            assert location in ("cursor", "checksum", "shared_mode")

    def test_scalar_self_dependence_is_carried(self):
        pdg = build_pdg(chase_loop())
        assert any(d.src == d.dst == "advance" and d.carried
                   for d in carried_dependences(pdg))

    def test_may_dependences_carry_probability(self):
        pdg = build_pdg(chase_loop(rare_prob=0.02))
        mays = may_dependences(pdg)
        assert mays and all(d.probability == 0.02 for d in mays)

    def test_speculation_removes_only_low_probability(self):
        pdg = build_pdg(chase_loop(rare_prob=0.02))
        spec, speculated = remove_speculated(pdg, threshold=0.1)
        assert speculated
        assert not may_dependences(spec)
        spec2, speculated2 = remove_speculated(pdg, threshold=0.01)
        assert not speculated2

    def test_condensation_groups_cycles(self):
        loop = Loop("cycle", 4)
        loop.scalar("a"); loop.scalar("b")
        loop.statement("s1", reads=("b",), writes=("a",),
                       compute=lambda i, e: {"a": e["b"] + 1})
        loop.statement("s2", reads=("a",), writes=("b",),
                       compute=lambda i, e: {"b": e["a"] + 1})
        dag, membership = condense(build_pdg(loop))
        assert membership["s1"] == membership["s2"]
        assert dag.number_of_nodes() == 1


class TestPartition:
    def test_canonical_plan(self):
        plan = plan_pipeline(chase_loop())
        assert [s.name for s in plan.stage1] == ["advance"]
        assert [s.name for s in plan.stage2] == ["fetch", "process"]
        assert [s.name for s in plan.stage3] == ["emit"]
        assert plan.profitable
        assert plan.speculated

    def test_without_speculation_parallel_stage_shrinks(self):
        """Keeping the may-dependence pulls 'process' into a carried cycle:
        it lands in the sequential stage and the pipeline stops being
        profitable — exactly why the speculation matters."""
        plan = plan_pipeline(chase_loop(rare_prob=0.5),
                             speculation_threshold=0.1)
        assert not plan.profitable
        assert "process" in [s.name for s in plan.stage1]

    def test_fully_sequential_loop_not_profitable(self):
        loop = Loop("serial", 4)
        loop.scalar("x", init=1)
        loop.statement("only", reads=("x",), writes=("x",),
                       compute=lambda i, e: {"x": e["x"] * 3 % 97})
        plan = plan_pipeline(loop)
        assert not plan.profitable
        assert [s.name for s in plan.stage1] == ["only"]

    def test_reduction_only_loop_runs_in_epilogue(self):
        loop = Loop("reduce", 4)
        loop.array("data", init=3)
        loop.scalar("acc")
        loop.statement("load", reads=("data",), writes=(),
                       compute=lambda i, e: {}, work=50)
        loop.statement("sum", reads=("acc", "data"), writes=("acc",),
                       compute=lambda i, e: {"acc": e["acc"] + e["data"]},
                       ordered=True)
        plan = plan_pipeline(loop)
        assert [s.name for s in plan.stage3] == ["sum"]
        assert not plan.stage1

    def test_describe_mentions_speculation(self):
        text = plan_pipeline(chase_loop()).describe()
        assert "speculated dependences" in text
        assert "stage 2 (parallel): fetch, process" in text


class TestCompiledExecution:
    def test_sequential_matches_interpreter(self):
        workload = compile_loop(chase_loop())
        result = run_sequential(workload)
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_parallel_matches_interpreter(self):
        workload = compile_loop(chase_loop(iterations=32))
        result = run_ps_dswp(workload)
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)
        assert result.system.stats.aborted == 0

    def test_parallel_is_profitable(self):
        seq = run_sequential(compile_loop(chase_loop(iterations=32)))
        par = run_ps_dswp(compile_loop(chase_loop(iterations=32)))
        assert seq.cycles / par.cycles > 1.4

    def test_manifesting_speculation_aborts_and_recovers(self):
        """The rare write really happens: HMTX must detect the violated
        speculation, abort, and recovery must still produce the
        interpreter's exact result."""
        loop = chase_loop(iterations=24, manifest_every=8)
        workload = compile_loop(loop)
        result = run_ps_dswp(workload)
        assert result.system.stats.aborted > 0
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_compiled_workload_runs_on_smtx(self):
        workload = compile_loop(chase_loop(iterations=24))
        result = run_smtx(workload, mode=ValidationMode.MAXIMAL)
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_hmtx_beats_smtx_max_on_compiled_code(self):
        """The paper's bottom line: compiler-grade (maximal) validation is
        affordable on HMTX, ruinous on the software baseline."""
        seq = run_sequential(compile_loop(chase_loop(iterations=32)))
        hmtx = run_ps_dswp(compile_loop(chase_loop(iterations=32)))
        smtx = run_smtx(compile_loop(chase_loop(iterations=32)),
                        mode=ValidationMode.MAXIMAL)
        assert seq.cycles / hmtx.cycles > seq.cycles / smtx.cycles

    def test_compiled_workload_on_directory_machine(self):
        from repro.core import MachineConfig
        workload = compile_loop(chase_loop(iterations=24))
        result = run_ps_dswp(workload,
                             MachineConfig(num_cores=4, coherence="directory"))
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_address_binding_is_stable(self):
        workload = compile_loop(chase_loop())
        a1 = workload.addr_of("cursor", 0)
        a2 = workload.addr_of("cursor", 5)
        assert a1 == a2                       # scalars are shared
        b1 = workload.addr_of("result", 0)
        b2 = workload.addr_of("result", 1)
        assert b2 - b1 == 64                  # arrays are per-iteration lines

    def test_smtx_minimal_set_is_the_scalars(self):
        workload = compile_loop(chase_loop())
        minimal = workload.smtx_minimal_addresses()
        assert workload.addr_of("cursor", 0) in minimal
        assert workload.addr_of("result", 0) not in minimal


class TestParadigmSelection:
    def doall_loop(self, iterations=24):
        loop = Loop("stencil", iterations=iterations)
        loop.array("cell", init=3)
        loop.array("out")
        loop.scalar("acc")
        loop.statement("smooth", reads=("cell",), writes=("out",),
                       compute=lambda i, e: {"out": (e["cell"] * 5 + i) & 0xFFFF},
                       work=150, branches=3)
        loop.statement("reduce", reads=("acc", "out"), writes=("acc",),
                       compute=lambda i, e: {
                           "acc": (e["acc"] + e["out"]) & 0xFFFFFFFF},
                       ordered=True, work=15)
        return loop

    def test_independent_iterations_get_doall(self):
        plan = plan_pipeline(self.doall_loop())
        assert plan.recommended_paradigm == "DOALL"
        assert not plan.stage1

    def test_pointer_chase_gets_ps_dswp(self):
        plan = plan_pipeline(chase_loop())
        assert plan.recommended_paradigm == "PS-DSWP"

    def test_serial_loop_gets_sequential(self):
        loop = Loop("serial", 4)
        loop.scalar("x", init=1)
        loop.statement("only", reads=("x",), writes=("x",),
                       compute=lambda i, e: {"x": e["x"] * 3 % 97})
        assert plan_pipeline(loop).recommended_paradigm == "Sequential"

    def test_doall_compiled_loop_runs_correctly(self):
        from repro.runtime import run_workload
        workload = compile_loop(self.doall_loop())
        assert workload.paradigm == "DOALL"
        result = run_workload(workload)
        assert result.paradigm == "DOALL"
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_doall_beats_pipeline_when_iterations_independent(self):
        from repro.runtime import run_ps_dswp, run_workload
        seq = run_sequential(compile_loop(self.doall_loop(32)))
        doall = run_workload(compile_loop(self.doall_loop(32)))
        pipeline = run_ps_dswp(compile_loop(self.doall_loop(32)))
        assert seq.cycles / doall.cycles > seq.cycles / pipeline.cycles

    def test_doall_body_refuses_sequential_stage(self):
        workload = compile_loop(chase_loop())
        with pytest.raises(NotImplementedError):
            list(workload.doall_iteration(0))
