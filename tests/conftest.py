"""Shared pytest plumbing for the tier-1 suite."""


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens", action="store_true", default=False,
        help="rewrite the checked-in fast-path equivalence goldens from "
             "the current simulator behaviour instead of asserting "
             "against them")
