"""Tests for the wall-clock bench harness (experiments/bench.py).

The report-file and regression-gate logic is tested with synthetic
sections (no simulation); one end-to-end smoke runs the real quick-mode
suite once to pin the section schema the CI job depends on.
"""

import json

from repro.experiments.bench import (
    check_regression,
    format_bench,
    run_bench,
    write_report,
)


def section(mode="quick", rate=1000):
    return {
        "mode": mode,
        "scale": 0.25,
        "repeat": 1,
        "workloads": {},
        "totals": {"wall_seconds": 1.0, "ops_executed": rate,
                   "accesses": 0, "ops_per_sec": rate,
                   "accesses_per_sec": 0, "fig8_wall_seconds": 1.0,
                   "fig8_ops_per_sec": rate},
    }


class TestCheckRegression:
    def _baseline(self, tmp_path, rate=1000, mode="quick"):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({"runs": {mode: section(mode, rate)}}))
        return path

    def test_within_tolerance_passes(self, tmp_path):
        ok, msg = check_regression(section(rate=800),
                                   self._baseline(tmp_path), tolerance=0.30)
        assert ok and msg.startswith("OK")

    def test_regression_fails(self, tmp_path):
        ok, msg = check_regression(section(rate=600),
                                   self._baseline(tmp_path), tolerance=0.30)
        assert not ok and msg.startswith("REGRESSION")

    def test_missing_baseline_passes_with_warning(self, tmp_path):
        ok, msg = check_regression(section(), tmp_path / "nope.json")
        assert ok and "no baseline" in msg

    def test_other_mode_section_is_not_compared(self, tmp_path):
        ok, msg = check_regression(
            section(mode="quick", rate=1),
            self._baseline(tmp_path, rate=10**6, mode="full"))
        assert ok and "skipping" in msg


class TestWriteReport:
    def test_merge_preserves_other_modes(self, tmp_path):
        out = tmp_path / "BENCH.json"
        write_report(section(mode="full", rate=5000), out)
        data = write_report(section(mode="quick", rate=1000), out)
        assert data["runs"]["full"]["totals"]["ops_per_sec"] == 5000
        assert data["runs"]["quick"]["totals"]["ops_per_sec"] == 1000
        assert data["schema"] == "hmtx-hotpath-bench/1"
        assert json.loads(out.read_text()) == data

    def test_corrupt_report_is_replaced(self, tmp_path):
        out = tmp_path / "BENCH.json"
        out.write_text("{not json")
        data = write_report(section(), out)
        assert data["runs"]["quick"]["mode"] == "quick"


class TestQuickModeEndToEnd:
    def test_quick_run_has_ci_contract_fields(self):
        run = run_bench(quick=True, repeat=1)
        assert run["mode"] == "quick"
        assert run["totals"]["ops_per_sec"] > 0
        assert run["totals"]["fig8_wall_seconds"] > 0
        assert set(run["workloads"]) >= {"contended-list", "capacity-hog"}
        assert all(w["sim_ops_per_sec"] > 0 for w in run["workloads"].values())
        # The printable table renders without error.
        assert "hot-path bench" in format_bench(run)


class TestPhaseProfiler:
    def test_breakdown_covers_one_real_run(self):
        from repro.experiments.engine import RunRequest, execute_request
        from repro.experiments.phase_profile import (
            PHASES,
            PhaseProfiler,
            format_profile,
        )
        from repro.coherence.hierarchy import MemoryHierarchy
        from repro.runtime.scheduler import Scheduler
        originals = (Scheduler.run, MemoryHierarchy._access)
        profiler = PhaseProfiler().install()
        try:
            record = execute_request(
                RunRequest(workload="ispell", system="hmtx", scale=0.2,
                           calibrated=False))
        finally:
            profiler.uninstall()
        # Uninstall restores the untouched originals.
        assert (Scheduler.run, MemoryHierarchy._access) == originals
        report = profiler.report(record.wall_seconds)
        assert set(report["phases"]) == set(PHASES) | {"other"}
        # Every run spends time in the scheduler and the protocol hit
        # path; exclusive shares must sum to ~1 with "other" absorbing
        # the remainder.
        assert report["phases"]["scheduler"]["seconds"] > 0
        assert report["phases"]["access"]["calls"] > 0
        assert abs(sum(row["share"]
                       for row in report["phases"].values()) - 1.0) < 0.01
        assert "phase breakdown" in format_profile(report)

    def test_profiled_run_is_behavior_identical(self):
        from repro.experiments.engine import RunRequest, execute_request
        from repro.experiments.phase_profile import PhaseProfiler
        request = RunRequest(workload="ispell", system="hmtx", scale=0.2,
                             calibrated=False)
        plain = execute_request(request)
        profiler = PhaseProfiler().install()
        try:
            profiled = execute_request(request)
        finally:
            profiler.uninstall()
        assert plain == profiled  # wall time excluded from equality
