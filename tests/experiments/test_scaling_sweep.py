"""Tests for the topology scaling sweep (``python -m repro scaling``)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.engine import SweepEngine
from repro.experiments.scaling_sweep import (
    QUICK_PRESETS,
    SCALING_PRESETS,
    format_scaling,
    reset_storm_curve,
    resolve_preset,
    run_scaling,
    scaling_machine,
    scaling_report,
    scaling_spec,
)
from repro.topology import topology_preset

QUICK = ("table2", "2s8c")
WORKLOADS = ("svc-kv",)
SYSTEMS = ("hmtx", "oracle")


@pytest.fixture(scope="module")
def result():
    return run_scaling(scale=0.25, presets=QUICK, systems=SYSTEMS,
                       workloads=WORKLOADS)


class TestSpec:
    def test_presets_resolve(self):
        for name in SCALING_PRESETS:
            assert resolve_preset(name) is topology_preset(name)
        assert resolve_preset("2s8c") is QUICK_PRESETS["2s8c"]
        with pytest.raises(KeyError):
            resolve_preset("nope")

    def test_machines_match_their_presets(self):
        flat = scaling_machine("table2")
        assert flat.topology is None and flat.coherence == "snoopy"
        big = scaling_machine("4s256c")
        assert big.num_cores == 256 and big.coherence == "directory"

    def test_spec_is_preset_major_and_observed(self):
        spec = scaling_spec(0.25, QUICK, SYSTEMS, WORKLOADS)
        assert len(spec.requests) == len(QUICK) * len(SYSTEMS) * len(WORKLOADS)
        assert all(r.observe for r in spec.requests)
        cores = [r.machine.num_cores for r in spec.requests]
        assert cores == sorted(cores)


class TestResult:
    def test_rows_cover_the_grid(self, result):
        assert {(r.preset, r.workload, r.system) for r in result.rows} == {
            (p, w, s) for p in QUICK for w in WORKLOADS for s in SYSTEMS}

    def test_rows_carry_per_socket_attribution(self, result):
        two_socket = [r for r in result.rows if r.preset == "2s8c"]
        assert two_socket
        for row in two_socket:
            assert row.sockets == 2
            assert set(row.commit_stall_cycles) <= {"0", "1"}

    def test_report_schema_and_json_round_trip(self, result):
        report = scaling_report(result)
        assert report["schema"] == "hmtx-scaling-report/1"
        assert len(report["rows"]) == len(result.rows)
        assert set(report["presets"]) == set(QUICK)
        encoded = json.dumps(report, indent=2, sort_keys=True)
        assert json.loads(encoded) == json.loads(
            json.dumps(json.loads(encoded), indent=2, sort_keys=True))

    def test_reset_storm_curve_is_hmtx_only(self, result):
        curve = reset_storm_curve(result)
        assert set(curve) == set(WORKLOADS)
        for points in curve.values():
            assert [p["preset"] for p in points] == list(QUICK)

    def test_format_renders(self, result):
        text = format_scaling(result)
        assert "VID-reset storm" in text
        assert "2s8c" in text


class TestDeterminism:
    def test_report_identical_across_engines_and_jobs(self, result):
        again = run_scaling(scale=0.25, presets=QUICK, systems=SYSTEMS,
                            workloads=WORKLOADS,
                            engine=SweepEngine(jobs=2), jobs=2)
        a = json.dumps(scaling_report(result), sort_keys=True)
        b = json.dumps(scaling_report(again), sort_keys=True)
        assert a == b
