"""Tests for the gem5-style statistics dump."""

import pytest

from repro.core import MachineConfig
from repro.experiments import collect_stats, format_stats, stats_report
from repro.runtime.paradigms import run_ps_dswp, run_sequential
from repro.smtx import run_smtx
from repro.workloads import LinkedListWorkload


@pytest.fixture(scope="module")
def hmtx_result():
    return run_ps_dswp(LinkedListWorkload(nodes=16))


class TestCollect:
    def test_sections_present(self, hmtx_result):
        titles = [t for t, _ in collect_stats(hmtx_result)]
        for expected in ("run", "transactions", "sla", "instruction mix",
                         "memory system", "caches", "vid comparators (L1[0])"):
            assert expected in titles

    def test_run_section_values(self, hmtx_result):
        sections = dict(collect_stats(hmtx_result))
        run = dict(sections["run"])
        assert run["paradigm"] == "PS-DSWP"
        assert run["cycles"] == hmtx_result.cycles

    def test_transaction_counts(self, hmtx_result):
        sections = dict(collect_stats(hmtx_result))
        tx = dict(sections["transactions"])
        assert tx["committed"] == 16
        assert tx["aborted"] == 0

    def test_directory_section_only_on_directory_machines(self, hmtx_result):
        assert "directory" not in dict(collect_stats(hmtx_result))
        result = run_ps_dswp(LinkedListWorkload(nodes=8),
                             MachineConfig(coherence="directory"))
        assert "directory" in dict(collect_stats(result))

    def test_overflow_section_only_when_enabled(self):
        result = run_ps_dswp(LinkedListWorkload(nodes=8),
                             MachineConfig(unbounded_sets=True))
        assert "overflow table" in dict(collect_stats(result))

    def test_smtx_results_dump_without_hierarchy_sections(self):
        result = run_smtx(LinkedListWorkload(nodes=8))
        titles = [t for t, _ in collect_stats(result)]
        assert "transactions" in titles
        assert "memory system" not in titles   # software TM


class TestFormat:
    def test_report_renders(self, hmtx_result):
        text = stats_report(hmtx_result)
        assert "[transactions]" in text
        assert "committed" in text

    def test_format_stats_alignment(self):
        text = format_stats([("s", [("a", 1), ("longer", 2)])])
        assert "  a       1" in text
