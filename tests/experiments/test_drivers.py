"""Smoke + shape tests for every experiment driver at reduced scale.

The full-scale runs live in benchmarks/; here each driver must execute,
produce well-formed output, and reproduce the headline *shape* claims.
"""

import pytest

from repro.experiments import (
    BenchmarkRunner,
    format_fig1,
    format_fig2,
    format_fig5,
    format_fig8,
    format_fig9,
    format_table,
    format_table1,
    format_table3,
    geomean,
    run_fig1,
    run_fig2,
    run_fig5,
    run_fig8,
    run_fig9,
    run_table1,
    run_table3,
)
from repro.workloads.suite import BENCHMARK_NAMES, SMTX_COMPARABLE

SCALE = 0.35


@pytest.fixture(scope="module")
def runner():
    """One shared reduced-scale runner: drivers reuse cached runs."""
    return BenchmarkRunner(scale=SCALE)


class TestReportingHelpers:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geomean_empty(self):
        """An empty set means the sweep lost rows: loud error, not 0.0."""
        with pytest.raises(ValueError):
            geomean([])

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]], title="T")
        assert "T" in text and "33" in text

    def test_runner_caches(self, runner):
        first = runner.sequential("ispell")
        second = runner.sequential("ispell")
        assert first is second


class TestFig1:
    def test_shape(self):
        result = run_fig1(nodes=20)
        assert result.speedups["PS-DSWP"] > result.speedups["DSWP"]
        assert result.speedups["DSWP"] > result.speedups["DOACROSS"]
        assert "Figure 1" in format_fig1(result)


class TestFig5:
    def test_formats(self):
        text = format_fig5(run_fig5())
        assert "S-M(2,2)" in text


class TestFig8(object):
    @pytest.fixture(scope="class")
    def result(self, runner):
        return run_fig8(runner=runner)

    def test_all_benchmarks_present(self, result):
        assert set(result.rows) == set(BENCHMARK_NAMES)

    def test_hmtx_speeds_up_everything(self, result):
        for row in result.rows.values():
            assert row.hmtx_speedup > 1.2, row.benchmark

    def test_semantics_preserved_everywhere(self, result):
        assert all(row.correct for row in result.rows.values())

    def test_geomean_near_paper(self, result):
        """Paper: 1.99x (All).  Reduced-scale runs drift a little."""
        assert 1.6 < result.geomean_hmtx_all < 2.6

    def test_hmtx_beats_smtx(self, result):
        """The headline comparison, despite maximal vs minimal validation."""
        assert result.geomean_hmtx_comparable > result.geomean_smtx_comparable

    def test_formats(self, result):
        text = format_fig8(result)
        assert "geomean" in text and "ispell" in text


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self, runner):
        return run_fig2(runner=runner)

    def test_six_benchmarks(self, result):
        assert set(result.rows) == set(SMTX_COMPARABLE)

    def test_substantial_validation_destroys_speedup(self, result):
        """Figure 2's message: more validation, much worse performance."""
        for row in result.rows.values():
            assert row.substantial_whole_program < row.minimal_whole_program
        assert result.geomean_substantial < 1.0 < result.geomean_minimal

    def test_formats(self, result):
        assert "substantial" in format_fig2(result)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, runner):
        return run_table1(runner=runner)

    def test_rows_complete(self, result):
        assert set(result.measured) == set(BENCHMARK_NAMES)

    def test_branch_mix_tracks_paper(self, result):
        """Branch density within 1.5x of Table 1 for every benchmark."""
        for name, measured in result.measured.items():
            paper = result.paper[name].branch_pct
            assert measured.branch_pct == pytest.approx(paper, rel=0.5), name

    def test_mispredict_rate_tracks_paper(self, result):
        for name, measured in result.measured.items():
            paper = result.paper[name].mispredict_pct
            # Absolute slack covers tiny-rate benchmarks (alvinn: 0.245%)
            # whose reduced-scale runs see only a handful of mispredicts.
            assert measured.mispredict_pct == \
                pytest.approx(paper, rel=0.7, abs=0.3), name

    def test_sla_ordering(self, result):
        m = result.measured
        assert m["ispell"].sla_pct_of_loads > m["456.hmmer"].sla_pct_of_loads
        assert m["ispell"].sla_pct_of_loads > m["052.alvinn"].sla_pct_of_loads

    def test_formats(self, result):
        assert "Table 1" in format_table1(result)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self, runner):
        return run_fig9(runner=runner)

    def test_bzip2_largest(self, result):
        assert result.largest() == "256.bzip2"

    def test_sets_nonzero(self, result):
        for row in result.rows.values():
            assert row.combined_kb > 0
            assert row.combined_kb >= max(row.read_set_kb, row.write_set_kb)

    def test_formats(self, result):
        assert "combined" in format_fig9(result)


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self, runner):
        return run_table3(runner=runner)

    def test_area_points(self, result):
        assert result.area_commodity == pytest.approx(107.1, abs=0.5)
        assert result.area_hmtx == pytest.approx(111.1, abs=0.5)

    def test_sequential_vs_parallel_power(self, result):
        seq = result.rows["Commodity / Sequential (All)"].dynamic_w
        hmtx = result.rows["HMTX-hw / HMTX, Max R/W (All)"].dynamic_w
        assert 2.5 < seq < 5.0
        # Reduced-scale parallel runs have proportionally longer pipeline
        # fill/drain, lowering average utilisation below the full-scale
        # (and paper) ~14 W point.
        assert 6.0 < hmtx < 16.0

    def test_hmtx_hardware_tax_is_small(self, result):
        plain = result.rows["Commodity / Sequential (All)"].dynamic_w
        taxed = result.rows["HMTX-hw / Sequential (All)"].dynamic_w
        assert plain < taxed < plain * 1.03

    def test_hmtx_energy_beats_smtx(self, result):
        smtx = result.rows["HMTX-hw / SMTX, Min R/W"].energy_j
        hmtx = result.rows["HMTX-hw / HMTX, Max R/W (Comp.)"].energy_j
        assert hmtx < smtx

    def test_formats(self, result):
        assert "area" in format_table3(result)
