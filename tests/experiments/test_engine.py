"""Sweep-engine tests: determinism, caching, and cache-key identity.

The contract the drivers (and the CI sweep-smoke job) rely on:

* ``jobs=N`` produces records *equal* to serial execution — results are
  merged in spec order, and wall-clock time is excluded from both record
  equality and ``to_report()``;
* repeated requests are deduplicated and cached by identity (``is``);
* the cache key covers everything that changes a result — workload,
  system, scale, paradigm, policy, machine config — so two runners with
  different scales or machines sharing one engine can never collide
  (the pre-engine BenchmarkRunner keyed on ``(name, system)`` alone).
"""

import json

import pytest

from repro.core.config import MachineConfig
from repro.experiments import (
    BenchmarkRunner,
    RunRequest,
    SweepEngine,
    SweepSpec,
    execute_request,
)

REQUESTS = (
    RunRequest(workload="ispell", system="sequential", scale=0.2),
    RunRequest(workload="ispell", system="hmtx", scale=0.2),
    RunRequest(workload="ispell", system="smtx-minimal", scale=0.2),
    RunRequest(workload="contended-list", system="hmtx", scale=0.2,
               paradigm="PS-DSWP", policy="backoff"),
)


class TestDeterminism:
    def test_parallel_equals_serial(self):
        """The headline contract: --jobs N is bit-identical to serial."""
        serial = SweepEngine(jobs=1).run(REQUESTS)
        fanned = SweepEngine(jobs=2).run(REQUESTS)
        for s, p in zip(serial, fanned):
            assert s == p                          # wall time excluded
            assert s.to_report() == p.to_report()  # the bytes CI diffs

    def test_pool_path_equals_serial(self):
        """Force the real process pool (the CPU cap would otherwise keep
        a 1-CPU host in-process) and check the fork-shared index dispatch
        still merges in request order."""
        serial = SweepEngine(jobs=1).run(REQUESTS)
        engine = SweepEngine(jobs=2)
        engine.worker_cap = 2
        fanned = engine.run(REQUESTS)
        for s, p in zip(serial, fanned):
            assert s == p
            assert s.to_report() == p.to_report()

    def test_jobs_capped_to_cpus_run_in_process(self, monkeypatch):
        """jobs > CPUs must not pay pool overhead: with a cap of one
        worker the batch runs in-process (no fork, overhead stays 0)."""
        import repro.experiments.engine as engine_mod
        engine = SweepEngine(jobs=4)
        engine.worker_cap = 1
        monkeypatch.setattr(
            engine_mod, "_pool_context",
            lambda: (_ for _ in ()).throw(AssertionError("pool used")))
        records = engine.run(REQUESTS)
        assert [r.workload for r in records] == \
            [r.workload for r in REQUESTS]
        assert engine.spawn_overhead_seconds == 0.0

    def test_results_in_request_order(self):
        records = SweepEngine().run(REQUESTS)
        assert [r.workload for r in records] == \
            [r.workload for r in REQUESTS]
        assert [r.system for r in records] == [r.system for r in REQUESTS]

    def test_report_excludes_wall_clock(self):
        record = SweepEngine().run_one(REQUESTS[0])
        report = record.to_report()
        assert "wall_seconds" in dir(record) or hasattr(record, "wall_seconds")
        assert "wall_seconds" not in report
        json.dumps(report, sort_keys=True)  # must be JSON-clean

    def test_wall_clock_excluded_from_equality(self):
        a = execute_request(REQUESTS[0])
        b = execute_request(REQUESTS[0])
        assert a.wall_seconds != b.wall_seconds or True  # timing may tie
        assert a == b


class TestCaching:
    def test_duplicates_deduplicated(self):
        engine = SweepEngine()
        first, second = engine.run([REQUESTS[1], REQUESTS[1]])
        assert first is second

    def test_run_one_caches(self):
        engine = SweepEngine()
        assert engine.run_one(REQUESTS[0]) is engine.run_one(REQUESTS[0])

    def test_run_spec_uses_cache(self):
        engine = SweepEngine()
        spec = SweepSpec(name="t", requests=REQUESTS[:2])
        records = engine.run_spec(spec)
        assert engine.run_one(REQUESTS[0]) is records[0]

    def test_repeat_tag_is_a_distinct_key(self):
        """bench's best-of-N timing needs re-execution, not a cache hit."""
        from dataclasses import replace
        engine = SweepEngine()
        base = engine.run_one(REQUESTS[0])
        again = engine.run_one(replace(REQUESTS[0], repeat=1))
        assert base is not again
        assert base == again  # same simulation either way


class TestCacheKeys:
    """Regression: keys cover scale and machine config (satellite #2)."""

    def test_scale_in_key(self):
        a = RunRequest(workload="ispell", system="hmtx", scale=0.2)
        b = RunRequest(workload="ispell", system="hmtx", scale=0.3)
        assert a.key() != b.key()

    def test_machine_config_in_key(self):
        a = RunRequest(workload="ispell", system="hmtx", scale=0.2)
        b = RunRequest(workload="ispell", system="hmtx", scale=0.2,
                       machine=MachineConfig(l1_size=8 * 1024))
        assert a.key() != b.key()

    def test_runners_sharing_an_engine_do_not_collide(self):
        """Two runners, one engine, different scales: distinct runs."""
        engine = SweepEngine()
        small = BenchmarkRunner(scale=0.2, engine=engine)
        large = BenchmarkRunner(scale=0.35, engine=engine)
        a = small.sequential("ispell")
        b = large.sequential("ispell")
        assert a is not b
        assert a.cycles != b.cycles

    def test_runner_config_keys_separately(self):
        engine = SweepEngine()
        stock = BenchmarkRunner(scale=0.2, engine=engine)
        tiny = BenchmarkRunner(scale=0.2, engine=engine,
                               config=MachineConfig(l1_size=4 * 1024))
        a = stock.hmtx("ispell")
        b = tiny.hmtx("ispell")
        assert a is not b

    def test_identical_runners_share_cache(self):
        engine = SweepEngine()
        one = BenchmarkRunner(scale=0.2, engine=engine)
        two = BenchmarkRunner(scale=0.2, engine=engine)
        assert one.sequential("ispell") is two.sequential("ispell")
