"""Tests for the CPU substrate: predictors, executor, interrupts."""

import pytest
from hypothesis import given, strategies as st

from repro.core import HMTXSystem, MachineConfig
from repro.cpu import (
    Branch,
    CalibratedPredictor,
    CoreExecutor,
    GsharePredictor,
    InterruptInjector,
    Load,
    Store,
    Work,
)
from repro.cpu.isa import BeginMTX, CommitMTX, Output, format_trace

ADDR = 0x4000


@pytest.fixture
def system():
    sys = HMTXSystem(MachineConfig(num_cores=2))
    sys.thread(0, core=0)
    sys.thread(1, core=1)
    return sys


class TestGshare:
    def test_learns_a_stable_pattern(self):
        predictor = GsharePredictor()
        for _ in range(200):
            predictor.predict(0x400, True)
        recent_mispredicts = predictor.stats.mispredictions
        for _ in range(200):
            predictor.predict(0x400, True)
        assert predictor.stats.mispredictions == recent_mispredicts

    def test_random_pattern_mispredicts_often(self):
        predictor = GsharePredictor()
        import random
        rng = random.Random(7)
        for _ in range(500):
            predictor.predict(0x400, rng.random() < 0.5)
        assert predictor.stats.mispredict_rate > 0.2


class TestCalibratedPredictor:
    @given(st.sampled_from([0.005, 0.02, 0.05]))
    def test_converges_to_rate(self, rate):
        predictor = CalibratedPredictor(rate, seed=123)
        for i in range(8000):
            predictor.predict(i, True)
        assert predictor.stats.mispredict_rate == pytest.approx(rate, rel=0.4)

    def test_deterministic(self):
        a = CalibratedPredictor(0.05, seed=9)
        b = CalibratedPredictor(0.05, seed=9)
        seq_a = [a.predict(i, True) for i in range(100)]
        seq_b = [b.predict(i, True) for i in range(100)]
        assert seq_a == seq_b

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            CalibratedPredictor(1.5)


class TestCoreExecutor:
    def test_work_costs_cycles(self, system):
        executor = CoreExecutor(system)
        _, latency = executor.execute(0, Work(17))
        assert latency == 17

    def test_load_returns_value(self, system):
        system.hierarchy.memory.write_word(ADDR, 42)
        executor = CoreExecutor(system)
        value, latency = executor.execute(0, Load(ADDR))
        assert value == 42
        assert latency > 0

    def test_store_then_load(self, system):
        executor = CoreExecutor(system)
        executor.execute(0, Store(ADDR, 7))
        assert executor.execute(0, Load(ADDR))[0] == 7

    def test_mtx_ops_dispatch(self, system):
        executor = CoreExecutor(system)
        vid = system.allocate_vid()
        executor.execute(0, BeginMTX(vid))
        executor.execute(0, Store(ADDR, 1))
        executor.execute(0, CommitMTX(vid))
        assert system.last_committed == vid

    def test_output_op(self, system):
        executor = CoreExecutor(system)
        executor.execute(0, Output("x"))
        assert system.committed_output == ["x"]

    def test_unknown_op_rejected(self, system):
        executor = CoreExecutor(system)
        with pytest.raises(TypeError):
            executor.execute(0, object())

    def test_mispredicted_branch_pays_penalty(self, system):
        executor = CoreExecutor(
            system, predictor_factory=lambda: CalibratedPredictor(1.0))
        _, latency = executor.execute(0, Branch(taken=True))
        costs = system.config.op_costs
        assert latency == costs.branch + costs.branch_mispredict_penalty

    def test_correct_branch_is_cheap(self, system):
        executor = CoreExecutor(
            system, predictor_factory=lambda: CalibratedPredictor(0.0))
        _, latency = executor.execute(0, Branch(taken=True))
        assert latency == system.config.op_costs.branch

    def test_burst_branch_counts_all(self, system):
        executor = CoreExecutor(
            system, predictor_factory=lambda: CalibratedPredictor(0.0))
        _, latency = executor.execute(0, Branch(taken=True, count=10,
                                                work_cycles=50))
        assert executor.stats.branches == 10
        assert latency == 50 + 10 * system.config.op_costs.branch

    def test_wrong_path_loads_fire_on_mispredict(self, system):
        system.hierarchy.memory.write_word(ADDR, 5)
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        executor = CoreExecutor(
            system, predictor_factory=lambda: CalibratedPredictor(1.0))
        executor.execute(0, Branch(taken=True, wrong_path_loads=(ADDR,)))
        assert system.stats.wrong_path_loads == 1

    def test_instruction_mix_accounting(self, system):
        executor = CoreExecutor(
            system, predictor_factory=lambda: CalibratedPredictor(0.0))
        executor.execute(0, Work(10))
        executor.execute(0, Branch(taken=True, count=5, work_cycles=5))
        # 10 (work) + 5 branches + 5 filler = 20 instructions, 5 branches.
        assert executor.stats.instructions == 20
        assert executor.stats.branch_fraction == pytest.approx(0.25)


class TestInterrupts:
    def test_fires_on_period(self, system):
        injector = InterruptInjector(period=1000, handler_accesses=2)
        assert injector.maybe_interrupt(system, 0, 0, clock=500) == 0
        latency = injector.maybe_interrupt(system, 0, 0, clock=1200)
        assert latency > 0
        assert injector.fired == 1

    def test_disabled_by_default(self, system):
        injector = InterruptInjector()
        assert injector.maybe_interrupt(system, 0, 0, clock=10**9) == 0

    def test_interrupt_does_not_disturb_speculation(self, system):
        """Section 5.2: a transaction survives an interrupt."""
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.store(0, ADDR, 42)
        injector = InterruptInjector(period=10, handler_accesses=8)
        injector.maybe_interrupt(system, 0, 0, clock=100)
        assert system.load(0, ADDR).value == 42
        system.commit_mtx(0, vid)
        assert system.stats.aborted == 0

    def test_per_core_periods(self, system):
        injector = InterruptInjector(period=1000)
        injector.maybe_interrupt(system, 0, 0, clock=1500)
        assert injector.maybe_interrupt(system, 1, 1, clock=500) == 0
        assert injector.fired == 1


class TestFormatTrace:
    def test_truncation(self):
        ops = [Work(1)] * 30
        text = format_trace(ops, limit=5)
        assert "25 more" in text
