"""Tests for the protocol tracer."""

import pytest

from repro.core import HMTXSystem, MachineConfig
from repro.errors import MisspeculationError
from repro.trace import (
    ProtocolTracer,
    format_address_history,
    format_summary,
    format_trace,
)
from repro.workloads import LinkedListWorkload

ADDR = 0x4000


@pytest.fixture
def traced_system():
    system = HMTXSystem(MachineConfig(num_cores=2))
    system.thread(0, core=0)
    system.thread(1, core=1)
    tracer = ProtocolTracer.attach(system.hierarchy)
    yield system, tracer
    tracer.detach()


class TestTracer:
    def test_records_accesses(self, traced_system):
        system, tracer = traced_system
        system.store(0, ADDR, 0, 1)
        system.load(1, ADDR, 0)
        kinds = [e.kind for e in tracer.events]
        assert "store" in kinds and "load" in kinds

    def test_records_version_creation(self, traced_system):
        system, tracer = traced_system
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.store(0, ADDR, 42)
        assert tracer.of_kind("versions")
        store_events = tracer.of_kind("store")
        assert any("+version" in e.detail for e in store_events)

    def test_records_commit_and_abort(self, traced_system):
        system, tracer = traced_system
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.store(0, ADDR, 1)
        system.commit_mtx(0, vid)
        assert tracer.of_kind("commit")
        v2 = system.allocate_vid()
        system.begin_mtx(0, v2)
        with pytest.raises(MisspeculationError):
            system.abort_mtx(0, v2)
        assert tracer.of_kind("abort")

    def test_records_misspeculation(self, traced_system):
        system, tracer = traced_system
        v1, v2 = system.allocate_vid(), system.allocate_vid()
        system.begin_mtx(1, v2)
        system.load(1, ADDR)
        system.begin_mtx(0, v1)
        with pytest.raises(MisspeculationError):
            system.store(0, ADDR, 9)
        events = tracer.of_kind("misspeculation")
        assert events and events[0].vid == v1

    def test_address_filter(self):
        system = HMTXSystem(MachineConfig(num_cores=2))
        system.thread(0, core=0)
        tracer = ProtocolTracer.attach(system.hierarchy, addresses={ADDR})
        system.store(0, ADDR, 0, 1)
        system.store(0, 0x9000, 0, 2)
        assert all(e.addr is None or e.addr == ADDR for e in tracer.events)
        tracer.detach()

    def test_detach_restores(self, traced_system):
        system, tracer = traced_system
        tracer.detach()
        before = len(tracer.events)
        system.store(0, ADDR, 0, 1)
        assert len(tracer.events) == before
        tracer._wrap_all()   # re-attach so the fixture's detach is a no-op

    def test_capacity_bound(self):
        system = HMTXSystem(MachineConfig(num_cores=1))
        system.thread(0, core=0)
        tracer = ProtocolTracer.attach(system.hierarchy)
        tracer.capacity = 5
        for i in range(20):
            system.store(0, ADDR + i * 64, 0, i)
        assert len(tracer.events) == 5
        assert tracer.dropped > 0
        tracer.detach()

    def test_sla_flag_traced(self, traced_system):
        system, tracer = traced_system
        system.hierarchy.memory.write_word(ADDR, 5)
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.load(0, ADDR)
        assert any("sla" in e.detail for e in tracer.of_kind("load"))


class TestFormatting:
    def test_format_trace(self, traced_system):
        system, tracer = traced_system
        system.store(0, ADDR, 0, 1)
        text = format_trace(tracer.events)
        assert "store" in text and "0x4000" in text

    def test_format_trace_limit(self, traced_system):
        system, tracer = traced_system
        for i in range(10):
            system.store(0, ADDR + 64 * i, 0, i)
        text = format_trace(tracer.events, limit=3)
        assert "more events" in text

    def test_address_history(self, traced_system):
        system, tracer = traced_system
        system.store(0, ADDR, 0, 1)
        system.store(0, 0x9000, 0, 2)
        text = format_address_history(tracer.events, ADDR)
        assert "0x4000" in text and "0x9000" not in text

    def test_summary(self, traced_system):
        system, tracer = traced_system
        system.store(0, ADDR, 0, 1)
        text = format_summary(tracer.summary())
        assert "store" in text


class TestTracedWorkload:
    def test_full_run_traces_cleanly(self):
        from repro.runtime.paradigms import run_ps_dswp
        workload = LinkedListWorkload(nodes=12)
        tracers = []

        def factory():
            system = HMTXSystem(MachineConfig())
            tracers.append(ProtocolTracer.attach(system.hierarchy))
            return system

        result = run_ps_dswp(workload, system_factory=factory)
        tracer = tracers[0]
        summary = tracer.summary()
        assert summary["commit"] == workload.iterations
        assert summary["load"] > 0 and summary["store"] > 0
        assert "misspeculation" not in summary
        tracer.detach()
