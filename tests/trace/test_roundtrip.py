"""Attach/detach roundtrip over the fast-path version indices.

Tracing wraps the hierarchy's hot methods; the wrapped calls must flow
through the same epoch/index bookkeeping as untraced ones, a traced run
must produce bit-identical statistics, and ``detach()`` must unwind like
a stack so nested tracers survive each other.
"""

import pytest

from repro.coherence.hierarchy import MemoryHierarchy
from repro.core import HMTXSystem, MachineConfig
from repro.runtime.paradigms import run_workload
from repro.trace import ProtocolTracer
from repro.workloads import make_benchmark

SCALE = 0.2


def run_traced(attach):
    """Run ispell on HMTX; ``attach`` hooks each fresh system."""
    tracers = []

    def factory():
        system = HMTXSystem(MachineConfig())
        attach(system, tracers)
        return system

    result = run_workload(make_benchmark("ispell", SCALE),
                          system_factory=factory)
    return result, tracers


class TestRoundtrip:
    def test_traced_run_is_bit_identical(self):
        """Wrapping adds observation, never behaviour."""
        plain, _ = run_traced(lambda system, tracers: None)
        traced, tracers = run_traced(
            lambda system, tracers: tracers.append(
                ProtocolTracer.attach(system.hierarchy)))
        assert tracers and tracers[-1].events
        assert traced.cycles == plain.cycles
        assert traced.system.stats == plain.system.stats
        assert traced.system.last_committed == plain.system.last_committed

    def test_indices_intact_under_tracing(self):
        """The PR-2 fast-path indices stay coherent through wrapped calls."""
        traced, tracers = run_traced(
            lambda system, tracers: tracers.append(
                ProtocolTracer.attach(system.hierarchy)))
        traced.system.hierarchy.check_invariants()  # includes index checks
        for tracer in tracers:
            tracer.detach()
        traced.system.hierarchy.check_invariants()

    def test_detach_restores_originals(self):
        system = HMTXSystem(MachineConfig())
        tracer = ProtocolTracer.attach(system.hierarchy)
        wrapped = system.hierarchy.load  # instance-attr function, not bound
        assert getattr(wrapped, "__func__", None) is not MemoryHierarchy.load
        tracer.detach()
        for name in ("load", "store", "commit", "abort", "vid_reset"):
            restored = getattr(system.hierarchy, name)
            assert restored.__func__ is getattr(MemoryHierarchy, name), name
        assert tracer._originals == {}

    def test_nested_tracers_unwind_like_a_stack(self):
        """Regression: detaching the outer tracer must not resurrect the
        raw method over the inner tracer's wrapper (the insertion-order
        detach bug silently stopped the surviving tracer's recording)."""
        system = HMTXSystem(MachineConfig())
        system.thread(0, core=0)
        inner = ProtocolTracer.attach(system.hierarchy)
        outer = ProtocolTracer.attach(system.hierarchy)

        system.store(0, 0x40, 1)
        assert len(inner.of_kind("store")) == 1
        assert len(outer.of_kind("store")) == 1

        outer.detach()
        system.store(0, 0x80, 2)              # inner must still see this
        assert len(inner.of_kind("store")) == 2
        assert len(outer.of_kind("store")) == 1

        inner.detach()
        system.store(0, 0xC0, 3)              # nobody records any more
        assert len(inner.of_kind("store")) == 2
        assert system.hierarchy.load.__func__ is MemoryHierarchy.load
        system.hierarchy.check_invariants()
