"""S1: BackendTracer ring-buffer semantics and dropped-event surfacing."""

from __future__ import annotations

from repro.trace.capture import BackendTracer
from repro.trace.format import format_trace


class TestRingBuffer:
    def test_below_capacity_nothing_dropped(self):
        tracer = BackendTracer(system=None, capacity=8)
        for i in range(5):
            tracer.record("load", vid=0, addr=i * 64, value=i)
        assert len(tracer.events) == 5
        assert tracer.dropped_events == 0

    def test_overflow_evicts_oldest_keeps_newest(self):
        tracer = BackendTracer(system=None, capacity=5)
        for i in range(12):
            tracer.record("store", vid=0, addr=i * 64, value=i)
        assert len(tracer.events) == 5
        assert tracer.dropped_events == 7
        # The surviving window is the most recent one, in order.
        assert [e.seq for e in tracer.events] == [8, 9, 10, 11, 12]
        assert [e.value for e in tracer.events] == [7, 8, 9, 10, 11]

    def test_capacity_adjustable_after_construction(self):
        tracer = BackendTracer(system=None)
        tracer.capacity = 3
        for i in range(10):
            tracer.record("load", vid=0, addr=i * 64, value=i)
        assert len(tracer.events) == 3
        assert tracer.dropped_events == 7


class TestDroppedSurfacing:
    def test_format_trace_header_warns_on_drop(self):
        tracer = BackendTracer(system=None, capacity=2)
        for i in range(6):
            tracer.record("load", vid=0, addr=i * 64, value=i)
        text = format_trace(tracer.events, dropped=tracer.dropped_events)
        first = text.splitlines()[0]
        assert "ring overflow" in first
        assert "4 oldest events dropped" in first
        assert "most recent 2" in first

    def test_complete_trace_has_no_warning(self):
        tracer = BackendTracer(system=None, capacity=16)
        tracer.record("commit", vid=1, detail="VID 1")
        text = format_trace(tracer.events, dropped=tracer.dropped_events)
        assert "ring overflow" not in text
