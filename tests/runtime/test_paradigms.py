"""Tests for the parallel execution paradigms on the linked-list workload."""

import pytest

from repro.core import MachineConfig
from repro.runtime.paradigms import (
    run_doacross,
    run_doall,
    run_dswp,
    run_ps_dswp,
    run_sequential,
    run_workload,
)
from repro.workloads.linkedlist import LinkedListWorkload


def fresh(nodes=24, **kw):
    return LinkedListWorkload(nodes=nodes, **kw)


@pytest.fixture(scope="module")
def sequential_baseline():
    workload = fresh()
    result = run_sequential(workload)
    return workload.expected_result(result.system), result.cycles


class TestSequential:
    def test_produces_golden_result(self, sequential_baseline):
        expected, _ = sequential_baseline
        workload = fresh()
        result = run_sequential(workload)
        assert workload.observed_result(result.system) == expected

    def test_no_transactions(self):
        result = run_sequential(fresh())
        assert result.system.stats.committed == 0
        assert result.paradigm == "Sequential"


@pytest.mark.parametrize("runner,paradigm", [
    (run_dswp, "DSWP"),
    (run_ps_dswp, "PS-DSWP"),
    (run_doacross, "DOACROSS"),
    (run_doall, "DOALL"),
])
class TestSpeculativeParadigms:
    def test_correct_result(self, runner, paradigm, sequential_baseline):
        expected, _ = sequential_baseline
        workload = fresh()
        result = runner(workload)
        assert workload.observed_result(result.system) == expected
        assert result.paradigm == paradigm

    def test_one_transaction_per_iteration(self, runner, paradigm,
                                            sequential_baseline):
        workload = fresh()
        result = runner(workload)
        assert result.system.stats.committed == workload.iterations

    def test_no_misspeculation(self, runner, paradigm, sequential_baseline):
        """High-confidence speculation: zero aborts, as in section 6.3."""
        workload = fresh()
        result = runner(workload)
        assert result.system.stats.aborted == 0
        assert result.recoveries == 0


class TestParadigmRelativePerformance:
    """The section 2.1 ordering on a pipeline-friendly loop."""

    @pytest.fixture(scope="class")
    def cycles(self):
        out = {}
        for name, runner in [("seq", run_sequential), ("doacross", run_doacross),
                             ("dswp", run_dswp), ("ps", run_ps_dswp)]:
            out[name] = runner(fresh(nodes=40, work_cycles=300)).cycles
        return out

    def test_ps_dswp_is_fastest(self, cycles):
        assert cycles["ps"] < cycles["dswp"]
        assert cycles["ps"] < cycles["doacross"]
        assert cycles["ps"] < cycles["seq"]

    def test_dswp_beats_doacross(self, cycles):
        """Pipeline paradigms hide inter-core latency; DOACROSS pays it
        per iteration (Figure 1)."""
        assert cycles["dswp"] < cycles["doacross"]


class TestVidOverflow:
    def test_ps_dswp_survives_vid_exhaustion(self):
        """More iterations than VIDs forces the 4.6 reset protocol."""
        config = MachineConfig(num_cores=4, vid_bits=3)  # only 7 VIDs
        workload = fresh(nodes=30)
        result = run_ps_dswp(workload, config)
        assert result.system.vid_space.resets >= 3
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_doall_epoch_barrier(self):
        config = MachineConfig(num_cores=4, vid_bits=3)
        workload = fresh(nodes=30)
        result = run_doall(workload, config)
        assert result.system.vid_space.resets >= 3
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)


class TestDispatch:
    def test_run_workload_uses_declared_paradigm(self):
        result = run_workload(fresh())
        assert result.paradigm == "PS-DSWP"

    def test_explicit_paradigm(self):
        result = run_workload(fresh(), paradigm="DOACROSS")
        assert result.paradigm == "DOACROSS"

    def test_unknown_paradigm(self):
        with pytest.raises(ValueError):
            run_workload(fresh(), paradigm="MAGIC")


class TestWorkerScaling:
    def test_more_stage2_workers_helps(self):
        slow = run_ps_dswp(fresh(nodes=40, work_cycles=600), stage2_workers=1)
        config8 = MachineConfig(num_cores=8)
        fast = run_ps_dswp(fresh(nodes=40, work_cycles=600),
                           config8, stage2_workers=6)
        assert fast.cycles < slow.cycles
