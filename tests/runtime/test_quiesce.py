"""The section 4.6 reset-scrub quiesce: a machine-wide barrier.

On a multi-socket machine the VID-reset scrub stalls *every* core while
tags are cleared across the sliced LLC — the resetting thread pays a
1-cycle issue slot and the scheduler's ``quiesce_all`` charges the scrub
to the whole machine.  Flat machines keep the original model (the
broadcast latency lands on the caller alone), bit-identically.
"""

import dataclasses

from repro.core.config import MachineConfig
from repro.core.system import HMTXSystem
from repro.experiments.engine import RunRequest, SweepEngine
from repro.experiments.scaling_sweep import QUICK_PRESETS
from repro.runtime.scheduler import Scheduler


def multi_socket_config(**topo_changes):
    topo = dataclasses.replace(QUICK_PRESETS["2s8c"], **topo_changes)
    return MachineConfig.for_topology(topo)


class TestQuiesceCallback:
    def test_scheduler_installs_the_callback(self):
        system = HMTXSystem(multi_socket_config())
        assert system.quiesce_cb is None
        scheduler = Scheduler(system)
        assert system.quiesce_cb is not None
        system.quiesce_cb(7)  # routes into scheduler.quiesce_all
        del scheduler

    def test_multi_socket_reset_stalls_every_thread(self):
        system = HMTXSystem(multi_socket_config())
        scheduler = Scheduler(system)
        for tid in range(3):
            scheduler.add_thread(tid, core=tid, program=iter(()))
        scrub = system.hierarchy.vid_reset()
        assert scrub > 1
        issue = system.vid_reset()
        assert issue == 1  # nominal issue slot; scrub went machine-wide
        assert all(thread.clock == scrub for thread in scheduler.threads)
        assert all(clock == scrub
                   for clock in scheduler._core_clock.values())

    def test_scrub_scale_multiplies_the_barrier(self):
        base = HMTXSystem(multi_socket_config())
        scaled = HMTXSystem(multi_socket_config(scrub_scale=2.0))
        assert scaled.hierarchy.vid_reset() \
            == 2 * base.hierarchy.vid_reset()

    def test_flat_machine_charges_the_caller_only(self):
        system = HMTXSystem(MachineConfig())
        scheduler = Scheduler(system)
        scheduler.add_thread(0, core=0, program=iter(()))
        latency = system.vid_reset()
        assert latency == system.hierarchy.vid_reset()
        assert latency > 1
        assert scheduler.threads[0].clock == 0

    def test_reset_without_scheduler_pays_on_the_caller(self):
        # Protocol-level users (model checker, unit tests) never attach
        # a scheduler; they get the full latency back as before.
        system = HMTXSystem(multi_socket_config())
        latency = system.vid_reset()
        assert latency == system.hierarchy.vid_reset()


class TestEndToEnd:
    def test_costlier_scrub_slows_a_closed_loop_run(self):
        engine = SweepEngine()
        cycles = {}
        for scrub in (1.0, 2.0):
            machine = dataclasses.replace(
                multi_socket_config(scrub_scale=scrub), vid_bits=4)
            (record,) = engine.run([RunRequest(
                workload="contended-list", system="hmtx",
                machine=machine, observe=True)])
            assert record.obs_digest["vid_resets"] >= 1
            cycles[scrub] = record.cycles
        assert cycles[2.0] > cycles[1.0]

    def test_flat_reference_runs_are_unchanged(self):
        # The quiesce path must not perturb the flat Table 2 model the
        # rest of the suite pins.
        engine = SweepEngine()
        (record,) = engine.run([RunRequest(
            workload="contended-list", system="hmtx", scale=0.5)])
        assert record.obs_digest is None
        assert record.cycles > 0
