"""Edge cases of the paradigm executors: degenerate sizes and shapes."""

import pytest

from repro.core import MachineConfig
from repro.runtime.paradigms import (
    run_doacross,
    run_doall,
    run_dswp,
    run_ps_dswp,
    run_sequential,
)
from repro.workloads import LinkedListWorkload


@pytest.mark.parametrize("runner", [run_sequential, run_dswp, run_ps_dswp,
                                    run_doacross, run_doall])
class TestSingleIteration:
    def test_one_iteration_loop(self, runner):
        workload = LinkedListWorkload(nodes=1)
        result = runner(workload)
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)


@pytest.mark.parametrize("runner", [run_dswp, run_ps_dswp, run_doacross,
                                    run_doall])
class TestTwoIterations:
    def test_two_iteration_loop(self, runner):
        workload = LinkedListWorkload(nodes=2)
        result = runner(workload)
        assert result.system.stats.committed == 2
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)


class TestShapes:
    def test_two_core_machine_runs_ps_dswp(self):
        """On 2 cores the pipeline collapses to DSWP (1 worker, inline)."""
        workload = LinkedListWorkload(nodes=12)
        result = run_ps_dswp(workload, MachineConfig(num_cores=2))
        assert result.paradigm == "DSWP"
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_more_workers_than_iterations(self):
        workload = LinkedListWorkload(nodes=3)
        result = run_ps_dswp(workload, MachineConfig(num_cores=8),
                             stage2_workers=6)
        assert result.system.stats.committed == 3
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_single_worker_doall(self):
        workload = LinkedListWorkload(nodes=6)
        result = run_doall(workload, workers=1)
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_minimum_vid_space(self):
        """1-bit VIDs: exactly one speculative transaction per epoch."""
        workload = LinkedListWorkload(nodes=6)
        result = run_ps_dswp(workload, MachineConfig(vid_bits=1))
        assert result.system.vid_space.resets >= 5
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)
