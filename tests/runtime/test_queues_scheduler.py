"""Tests for the timed queues and the discrete-event scheduler."""

import pytest

from repro.core import HMTXSystem, MachineConfig
from repro.cpu.isa import Consume, Load, Produce, Store, Work
from repro.runtime.queues import QueueSet, TimedQueue
from repro.runtime.scheduler import DeadlockError, Scheduler

ADDR = 0x4000


class TestTimedQueue:
    def test_fifo_order(self):
        q = TimedQueue("q", latency=10)
        q.produce("a", now=0)
        q.produce("b", now=5)
        assert q.try_consume(100)[0] == "a"
        assert q.try_consume(100)[0] == "b"

    def test_entries_carry_latency(self):
        q = TimedQueue("q", latency=40)
        q.produce("a", now=100)
        value, ready = q.try_consume(0)
        assert ready == 140

    def test_empty_returns_none(self):
        assert TimedQueue("q").try_consume(0) is None

    def test_bounded_capacity(self):
        q = TimedQueue("q", capacity=2)
        q.produce(1, 0)
        q.produce(2, 0)
        assert q.full()

    def test_unbounded(self):
        q = TimedQueue("q", capacity=None)
        for i in range(100):
            q.produce(i, 0)
        assert not q.full()

    def test_last_pop_time_tracks_consumer(self):
        q = TimedQueue("q", latency=10)
        q.produce("a", now=0)
        q.try_consume(now=55)
        assert q.last_pop_time == 55

    def test_clear(self):
        q = TimedQueue("q")
        q.produce(1, 0)
        q.clear()
        assert q.try_consume(0) is None

    def test_queue_set_shares_latency(self):
        qs = QueueSet(latency=33)
        assert qs.get("x").latency == 33
        assert qs.get("x") is qs.get("x")


def make_scheduler(num_cores=2):
    system = HMTXSystem(MachineConfig(num_cores=num_cores))
    return system, Scheduler(system)


class TestScheduler:
    def test_single_thread_runs_to_completion(self):
        system, sched = make_scheduler()

        def program():
            yield Work(10)
            yield Store(ADDR, 7)
            value = yield Load(ADDR)
            assert value == 7

        sched.add_thread(0, core=0, program=program())
        result = sched.run()
        assert result.makespan > 10
        assert result.ops_executed == 3

    def test_producer_consumer_timing(self):
        system, sched = make_scheduler()
        times = {}

        def producer():
            yield Work(100)
            yield Produce("q", 42)

        def consumer():
            value = yield Consume("q")
            times["value"] = value

        sched.add_thread(0, core=0, program=producer())
        sched.add_thread(1, core=1, program=consumer())
        result = sched.run()
        assert times["value"] == 42
        # Consumer waited for producer work + queue latency.
        assert result.thread_clocks[1] >= 100 + system.config.queue_latency

    def test_deadlock_detection(self):
        system, sched = make_scheduler()

        def starved():
            yield Consume("never")

        sched.add_thread(0, core=0, program=starved())
        with pytest.raises(DeadlockError):
            sched.run()

    def test_core_serialises_threads(self):
        """Two threads on one core cannot overlap their work."""
        system, sched = make_scheduler(num_cores=1)

        def worker():
            yield Work(100)

        sched.add_thread(0, core=0, program=worker())
        sched.add_thread(1, core=0, program=worker())
        result = sched.run()
        assert result.makespan >= 200

    def test_threads_on_different_cores_overlap(self):
        system, sched = make_scheduler(num_cores=2)

        def worker():
            yield Work(100)

        sched.add_thread(0, core=0, program=worker())
        sched.add_thread(1, core=1, program=worker())
        assert sched.run().makespan < 200

    def test_bounded_queue_backpressure(self):
        """A producer stalls on a full queue until the consumer pops."""
        system, sched = make_scheduler()
        sched.queues.capacity = None
        sched.queues = type(sched.queues)(latency=10, capacity=1)

        def producer():
            for i in range(4):
                yield Produce("q", i)

        def consumer():
            for _ in range(4):
                yield Consume("q")
                yield Work(500)

        sched.add_thread(0, core=0, program=producer())
        sched.add_thread(1, core=1, program=consumer())
        result = sched.run()
        # Producer finished long after its own work due to back-pressure.
        assert result.thread_clocks[0] > 1000

    def test_min_clock_ordering_is_deterministic(self):
        system, sched = make_scheduler()
        order = []

        def tagged(tag, cycles):
            def program():
                for _ in range(3):
                    order.append(tag)
                    yield Work(cycles)
            return program()

        sched.add_thread(0, core=0, program=tagged("slow", 100))
        sched.add_thread(1, core=1, program=tagged("fast", 10))
        sched.run()
        # The fast thread executes several ops per slow op.
        assert order.count("fast") == 3
        assert order[:3].count("fast") >= 2

    def test_replace_programs_keeps_clocks(self):
        system, sched = make_scheduler()

        def first():
            yield Work(500)

        sched.add_thread(0, core=0, program=first())
        sched.run()

        def second():
            yield Work(1)

        sched.replace_programs({0: second()})
        result = sched.run()
        assert result.thread_clocks[0] >= 501
