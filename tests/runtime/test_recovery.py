"""Abort-recovery tests: misspeculating workloads must still produce the
sequential result after rollback and re-execution."""

import pytest

from repro.cpu.isa import AbortMTX, Load, Store, Work
from repro.runtime.paradigms import run_ps_dswp, run_sequential
from repro.workloads.base import Workload
from repro.workloads.linkedlist import LinkedListWorkload


class ConflictingWorkload(LinkedListWorkload):
    """A linked-list loop whose stage 2 occasionally writes a *shared*
    location out of order — guaranteeing genuine misspeculation."""

    name = "conflicting"

    def __init__(self, nodes=18, conflict_every=6):
        super().__init__(nodes=nodes)
        self.conflict_every = conflict_every
        self.shared_addr = 0x9_0000

    def stage2_iteration(self, i):
        yield from super().stage2_iteration(i)
        if i % self.conflict_every == self.conflict_every - 1:
            # Reads then writes a shared word: later iterations read it
            # first (they run concurrently), so the write aborts sometimes.
            value = yield Load(self.shared_addr)
            yield Work(120)
            yield Store(self.shared_addr, value + 1)


class ExplicitAbortWorkload(LinkedListWorkload):
    """Raises abortMTX once, mid-run (software-detected misspeculation)."""

    name = "explicit-abort"

    def __init__(self, nodes=12):
        super().__init__(nodes=nodes)
        self._aborted_once = False

    def stage2_iteration(self, i):
        yield from super().stage2_iteration(i)
        if i == 5 and not self._aborted_once:
            self._aborted_once = True
            yield AbortMTX(i + 1)


class TestConflictRecovery:
    def test_result_correct_despite_aborts(self):
        workload = ConflictingWorkload()
        expected_workload = ConflictingWorkload()
        seq = run_sequential(expected_workload)
        expected = expected_workload.expected_result(seq.system)
        result = run_ps_dswp(workload)
        assert workload.observed_result(result.system) == expected

    def test_all_iterations_eventually_commit(self):
        workload = ConflictingWorkload()
        result = run_ps_dswp(workload)
        assert result.system.stats.committed >= workload.iterations

    def test_shared_counter_is_sequentially_consistent(self):
        workload = ConflictingWorkload(nodes=18, conflict_every=3)
        result = run_ps_dswp(workload)
        final = result.system.hierarchy.load(0, workload.shared_addr, 0).value
        assert final == 18 // 3


class TestExplicitAbortRecovery:
    def test_recovers_and_completes(self):
        workload = ExplicitAbortWorkload()
        result = run_ps_dswp(workload)
        assert result.recoveries >= 1
        assert result.system.stats.explicit_aborts == 1
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)

    def test_committed_iterations_not_redone_from_scratch(self):
        workload = ExplicitAbortWorkload()
        result = run_ps_dswp(workload)
        # Exactly the aborted tail is re-executed: committed count equals
        # the iteration count (each iteration commits exactly once).
        assert result.system.stats.committed == workload.iterations
