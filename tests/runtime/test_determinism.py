"""Determinism: identical configurations must produce identical runs.

The simulator is a deterministic discrete-event system — no wall-clock, no
process randomness.  Reproducibility is what makes the calibrated Table 1
statistics and the regression benchmarks meaningful.
"""

import pytest

from repro.core import MachineConfig
from repro.runtime.paradigms import run_ps_dswp, run_sequential, run_workload
from repro.workloads import LinkedListWorkload, executor_factory_for, make_benchmark


class TestDeterminism:
    def test_sequential_runs_identical(self):
        a = run_sequential(LinkedListWorkload(nodes=20))
        b = run_sequential(LinkedListWorkload(nodes=20))
        assert a.cycles == b.cycles
        assert a.run.ops_executed == b.run.ops_executed

    def test_parallel_runs_identical(self):
        a = run_ps_dswp(LinkedListWorkload(nodes=20))
        b = run_ps_dswp(LinkedListWorkload(nodes=20))
        assert a.cycles == b.cycles
        assert a.run.thread_clocks == b.run.thread_clocks

    @pytest.mark.parametrize("name", ["ispell", "130.li"])
    def test_benchmark_stats_reproducible(self, name):
        def run():
            workload = make_benchmark(name, 0.4)
            result = run_workload(
                workload, executor_factory=executor_factory_for(workload))
            stats = result.system.stats
            return (result.cycles, stats.slas_sent, stats.spec_loads,
                    stats.avg_combined_set_kb,
                    result.extra["exec_stats"].mispredicts)

        assert run() == run()

    def test_directory_runs_identical(self):
        config = MachineConfig(coherence="directory")
        a = run_ps_dswp(LinkedListWorkload(nodes=16), config)
        b = run_ps_dswp(LinkedListWorkload(nodes=16), config)
        assert a.cycles == b.cycles

    def test_distinct_configs_distinct_timings(self):
        """Sanity: the determinism is not 'everything collapses to the
        same number' — changing the machine changes the timing."""
        fast = run_ps_dswp(LinkedListWorkload(nodes=20),
                           MachineConfig(memory_latency=100))
        slow = run_ps_dswp(LinkedListWorkload(nodes=20),
                           MachineConfig(memory_latency=400))
        assert fast.cycles != slow.cycles
