"""Tests for the HMTXSystem programming interface (section 3)."""

import pytest

from repro.core import HMTXSystem, MachineConfig
from repro.errors import MisspeculationError, TransactionUsageError

ADDR = 0x4000


@pytest.fixture
def system():
    sys = HMTXSystem(MachineConfig(num_cores=4))
    for tid in range(4):
        sys.thread(tid, core=tid)
    return sys


class TestThreadManagement:
    def test_thread_registration(self, system):
        assert system.contexts[0].core == 0

    def test_core_out_of_range(self):
        sys = HMTXSystem(MachineConfig(num_cores=2))
        with pytest.raises(ValueError):
            sys.thread(0, core=5)

    def test_migration_finds_data_via_vid(self, system):
        """Section 5.2: speculative threads can migrate between cores."""
        system.begin_mtx(0, system.allocate_vid())
        system.store(0, ADDR, 42)
        system.migrate(0, core=3)
        assert system.load(0, ADDR).value == 42


class TestBeginMtx:
    def test_sets_vid_register(self, system):
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        assert system.contexts[0].vid == vid

    def test_vid_zero_returns_to_nonspec_without_commit(self, system):
        system.hierarchy.memory.write_word(ADDR, 5)
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.store(0, ADDR, 99)
        system.begin_mtx(0, 0)
        # The store is still uncommitted: non-speculative readers see 5.
        assert system.load(1, ADDR).value == 5
        # But the transaction remains alive and committable.
        system.begin_mtx(1, vid)
        system.commit_mtx(1, vid)
        assert system.load(1, ADDR).value == 99

    def test_rejects_out_of_range_vid(self, system):
        with pytest.raises(TransactionUsageError):
            system.begin_mtx(0, 64)

    def test_rejects_committed_vid(self, system):
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.commit_mtx(0, vid)
        with pytest.raises(TransactionUsageError):
            system.begin_mtx(0, vid)


class TestCommitOrder:
    def test_out_of_order_commit_rejected(self, system):
        """Section 4.4: software must ensure consecutive commits; we make
        violations a hard error instead of undefined behaviour."""
        v1, v2 = system.allocate_vid(), system.allocate_vid()
        system.begin_mtx(0, v1)
        system.begin_mtx(1, v2)
        with pytest.raises(TransactionUsageError):
            system.commit_mtx(1, v2)

    def test_unknown_vid_commit_rejected(self, system):
        with pytest.raises(TransactionUsageError):
            system.commit_mtx(0, 1)

    def test_in_order_commits_work(self, system):
        vids = [system.allocate_vid() for _ in range(3)]
        for tid, vid in enumerate(vids):
            system.begin_mtx(tid, vid)
            system.store(tid, ADDR + 64 * tid, vid * 10)
        for tid, vid in enumerate(vids):
            system.commit_mtx(tid, vid)
        assert system.last_committed == 3

    def test_commit_by_any_participating_thread(self, system):
        """Commit must be called once, by one of the threads (3.1) — not
        necessarily the one that began the MTX."""
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.store(0, ADDR, 1)
        system.begin_mtx(0, 0)
        system.begin_mtx(3, vid)
        system.commit_mtx(3, vid)
        assert system.load(2, ADDR).value == 1


class TestMultipleTransactionsPerCore:
    def test_thread_moves_between_open_transactions(self, system):
        """Headline feature 2: a core works on several uncommitted MTXs."""
        v1, v2, v3 = (system.allocate_vid() for _ in range(3))
        system.begin_mtx(0, v1)
        system.store(0, ADDR, 1)
        system.begin_mtx(0, v2)
        system.store(0, ADDR, 2)
        system.begin_mtx(0, v3)
        system.store(0, ADDR, 3)
        # Re-enter the first transaction; its version is intact.
        system.begin_mtx(0, v1)
        assert system.load(0, ADDR).value == 1
        assert len(system.active_vids) == 3


class TestAbort:
    def test_explicit_abort_raises_and_flushes(self, system):
        system.hierarchy.memory.write_word(ADDR, 5)
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.store(0, ADDR, 99)
        with pytest.raises(MisspeculationError):
            system.abort_mtx(0, vid)
        assert system.load(1, ADDR).value == 5
        assert not system.active_vids
        assert system.stats.explicit_aborts == 1

    def test_conflict_abort_records_and_reraises(self, system):
        v1, v2 = system.allocate_vid(), system.allocate_vid()
        system.begin_mtx(0, v2)
        system.load(0, ADDR)
        system.begin_mtx(1, v1)
        with pytest.raises(MisspeculationError):
            system.store(1, ADDR, 1)
        assert system.stats.aborted == 1

    def test_vids_recycle_after_abort(self, system):
        v1 = system.allocate_vid()
        system.begin_mtx(0, v1)
        system.commit_mtx(0, v1)
        system.allocate_vid()  # v2, will abort
        with pytest.raises(MisspeculationError):
            system.abort_mtx(0, 2)
        assert system.allocate_vid() == 2

    def test_recovery_handler_registration(self, system):
        handler = lambda: "recover"
        system.init_mtx(0, handler)
        assert system.recovery_handlers()[0] is handler


class TestVidReset:
    def test_reset_requires_all_committed(self, system):
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        with pytest.raises(TransactionUsageError):
            system.vid_reset()

    def test_full_epoch_cycle(self):
        """Use all 2^m - 1 VIDs, reset, and keep the data (section 4.6)."""
        sys = HMTXSystem(MachineConfig(num_cores=2, vid_bits=3))
        sys.thread(0, core=0)
        for i in range(7):
            vid = sys.allocate_vid()
            sys.begin_mtx(0, vid)
            sys.store(0, ADDR + 64 * i, 100 + i)
            sys.commit_mtx(0, vid)
        assert sys.ready_for_vid_reset()
        sys.vid_reset()
        assert sys.last_committed == 0
        # New epoch: VID 1 again; old data visible to it.
        vid = sys.allocate_vid()
        assert vid == 1
        sys.begin_mtx(0, vid)
        assert sys.load(0, ADDR).value == 100
        sys.store(0, ADDR, 999)
        sys.commit_mtx(0, vid)
        assert sys.load(0, ADDR).value == 999

    def test_reset_after_abort_scrubs_lines(self):
        sys = HMTXSystem(MachineConfig(num_cores=2, vid_bits=3))
        sys.thread(0, core=0)
        for i in range(7):
            vid = sys.allocate_vid()
            sys.begin_mtx(0, vid)
            sys.store(0, ADDR, i)
            sys.commit_mtx(0, vid)
        sys.vid_reset()
        vid = sys.allocate_vid()
        sys.begin_mtx(0, vid)
        assert sys.load(0, ADDR).value == 6


class TestOutputBuffering:
    def test_transactional_output_held_until_commit(self, system):
        """Section 4.7: output inside a transaction must not escape."""
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.output(0, "hello")
        assert system.committed_output == []
        system.commit_mtx(0, vid)
        assert system.committed_output == ["hello"]

    def test_aborted_output_discarded(self, system):
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.output(0, "doomed")
        with pytest.raises(MisspeculationError):
            system.abort_mtx(0, vid)
        assert system.committed_output == []

    def test_nonspeculative_output_immediate(self, system):
        system.output(0, "now")
        assert system.committed_output == ["now"]

    def test_multi_thread_output_ordering_by_commit(self, system):
        v1, v2 = system.allocate_vid(), system.allocate_vid()
        system.begin_mtx(0, v1)
        system.output(0, "first")
        system.begin_mtx(1, v2)
        system.output(1, "second")
        system.commit_mtx(0, v1)
        system.commit_mtx(1, v2)
        assert system.committed_output == ["first", "second"]


class TestKernelAccesses:
    def test_kernel_access_carries_no_vid(self, system):
        """Section 5.2: handler code outside the text segment never marks
        lines, so interrupts cannot cause misspeculation."""
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.load(0, ADDR)
        kaddr = 0x7F000000
        system.kernel_store(0, kaddr, 1)
        system.kernel_load(0, kaddr)
        # The kernel lines are non-speculative.
        for _, line in system.hierarchy.versions_everywhere(kaddr):
            assert not line.is_speculative()

    def test_kernel_store_to_spec_data_would_conflict(self, system):
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.store(0, ADDR, 9)
        with pytest.raises(MisspeculationError):
            system.kernel_store(1, ADDR, 1)
