"""Tests for Speculative Load Acknowledgments (section 5.1)."""

import pytest

from repro.core import HMTXSystem, MachineConfig
from repro.core.sla import SlaTracker
from repro.errors import MisspeculationError

ADDR = 0x4000


class TestSlaTrackerUnit:
    def test_ghost_records_highest_vid(self):
        tracker = SlaTracker()
        tracker.record_wrong_path(0x100, 5, would_mark=True)
        tracker.record_wrong_path(0x108, 3, would_mark=True)  # same line
        assert tracker.pending_ghosts() == 1
        assert tracker._ghosts[0x100] == 5

    def test_non_marking_wrong_path_ignored(self):
        tracker = SlaTracker()
        tracker.record_wrong_path(0x100, 5, would_mark=False)
        assert tracker.pending_ghosts() == 0
        assert tracker.wrong_path_loads == 1

    def test_nonspeculative_wrong_path_ignored(self):
        tracker = SlaTracker()
        tracker.record_wrong_path(0x100, 0, would_mark=True)
        assert tracker.pending_ghosts() == 0

    def test_store_below_ghost_counts_avoided_abort(self):
        tracker = SlaTracker()
        tracker.record_wrong_path(0x100, 5, would_mark=True)
        assert tracker.check_store(0x100, 3)
        assert tracker.avoided_aborts == 1
        assert tracker.pending_ghosts() == 0

    def test_store_at_or_above_ghost_is_harmless(self):
        tracker = SlaTracker()
        tracker.record_wrong_path(0x100, 5, would_mark=True)
        assert not tracker.check_store(0x100, 5)
        assert not tracker.check_store(0x100, 7)
        assert tracker.avoided_aborts == 0

    def test_commit_clears_stale_ghosts(self):
        tracker = SlaTracker()
        tracker.record_wrong_path(0x100, 2, would_mark=True)
        tracker.record_wrong_path(0x140, 7, would_mark=True)
        tracker.on_commit(3)
        assert tracker.pending_ghosts() == 1

    def test_abort_clears_everything(self):
        tracker = SlaTracker()
        tracker.record_wrong_path(0x100, 2, would_mark=True)
        tracker.on_abort()
        assert tracker.pending_ghosts() == 0


@pytest.fixture
def pair():
    """(SLA-enabled system, SLA-disabled system), same setup."""
    out = []
    for enabled in (True, False):
        sys = HMTXSystem(MachineConfig(num_cores=2), sla_enabled=enabled)
        sys.thread(0, core=0)
        sys.thread(1, core=1)
        sys.hierarchy.memory.write_word(ADDR, 5)
        out.append(sys)
    return out


class TestSlaSystemBehaviour:
    def test_wrong_path_load_returns_data_without_marking(self, pair):
        system, _ = pair
        system.begin_mtx(0, system.allocate_vid())
        value, latency = system.wrong_path_load(0, ADDR)
        assert value == 5
        assert latency > 0
        for _, line in system.hierarchy.versions_everywhere(ADDR):
            assert not line.is_speculative()

    def test_false_misspeculation_avoided_with_sla(self, pair):
        """The section 5.1 scenario: a squashed VID-5 load must not make a
        VID-3 store abort."""
        system, _ = pair
        v3 = system.allocate_vid(); system.vid_space.rewind(6); v5 = 5
        system.begin_mtx(0, v5)
        system.active_vids.add(v5)
        system.wrong_path_load(0, ADDR)          # squashed load, VID 5
        system.begin_mtx(1, v3)
        system.store(1, ADDR, 99)                # would abort naively
        assert system.stats.false_aborts_avoided == 1
        assert system.stats.aborted == 0

    def test_false_misspeculation_triggers_without_sla(self, pair):
        _, naive = pair
        v3 = naive.allocate_vid(); naive.vid_space.rewind(6); v5 = 5
        naive.begin_mtx(0, v5)
        naive.active_vids.add(v5)
        naive.wrong_path_load(0, ADDR)           # really marks the line
        naive.begin_mtx(1, v3)
        with pytest.raises(MisspeculationError):
            naive.store(1, ADDR, 99)
        assert naive.stats.false_aborts_triggered == 1

    def test_sla_required_only_on_first_touch(self, pair):
        """Memory locality keeps SLA traffic low: repeat touches of a line
        already marked with the VID need no acknowledgment."""
        system, _ = pair
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        first = system.load(0, ADDR)
        second = system.load(0, ADDR)
        same_line = system.load(0, ADDR + 8)
        assert first.sla_required
        assert not second.sla_required
        assert not same_line.sla_required
        assert system.stats.slas_sent == 1

    def test_sla_not_needed_after_own_store(self, pair):
        system, _ = pair
        vid = system.allocate_vid()
        system.begin_mtx(0, vid)
        system.store(0, ADDR, 1)
        assert not system.load(0, ADDR).sla_required

    def test_new_vid_needs_new_sla(self, pair):
        system, _ = pair
        v1, v2 = system.allocate_vid(), system.allocate_vid()
        system.begin_mtx(0, v1)
        system.load(0, ADDR)
        system.begin_mtx(0, v2)
        assert system.load(0, ADDR).sla_required
        assert system.stats.slas_sent == 2
