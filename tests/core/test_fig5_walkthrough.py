"""The paper's Figure 5 worked example, step by step.

Each assertion checks the *exact* version set (state, modVID, highVID) the
figure shows after the corresponding instruction.
"""

from repro.experiments.fig5_walkthrough import ADDR, run_fig5


def version_sets(steps):
    """step -> set of (state, modVID, highVID), cache names dropped."""
    return {s.step: {(state, mod, high) for _, state, mod, high in s.versions}
            for s in steps}


class TestFig5:
    def setup_method(self):
        self.steps = run_fig5()
        self.versions = version_sets(self.steps)

    def test_initial_state_uncached(self):
        assert self.versions[0] == set()

    def test_step1_first_speculative_read(self):
        # Figure 5, instruction 1: E(0,0) -> S-E(0,1).
        assert self.versions[1] == {("S-E", 0, 1)}

    def test_step2_first_speculative_write(self):
        # Backup S-O(0,1) plus modified S-M(1,1).
        assert self.versions[2] == {("S-O", 0, 1), ("S-M", 1, 1)}

    def test_step3_second_version(self):
        # Three versions of one address coexist in one cache.
        assert self.versions[3] == {("S-O", 0, 1), ("S-O", 1, 2),
                                    ("S-M", 2, 2)}

    def test_step4_peer_read_hits_middle_version(self):
        # Thread 2's VID-1 read must find version 1 (uncommitted value
        # forwarding) without disturbing the other versions.
        step = self.steps[4]
        assert step.loaded_value != 0
        assert ("S-M", 2, 2) in self.versions[4]
        assert any(state == "S-S" and mod == 1
                   for state, mod, high in self.versions[4])

    def test_step4_reads_forwarded_value(self):
        # VID 1's store advanced the list head; thread 2 sees that value.
        step1_value = self.steps[1].loaded_value
        step4_value = self.steps[4].loaded_value
        assert step4_value != step1_value

    def test_step5_commit_folds_version1(self):
        # After commitMTX(1): version 1's data is architectural (modVID 0),
        # version 2 stays speculative, version 0's backup is gone.
        versions = self.versions[5]
        assert ("S-M", 2, 2) in versions
        assert ("S-O", 0, 1) not in versions
        assert any(mod == 0 and high == 2 for _, mod, high in versions)
