"""Tests for MachineConfig (Table 2), ThreadContext, and SystemStats."""

import pytest

from repro.core import MachineConfig, SystemStats, ThreadContext, table2_config
from repro.core.config import small_test_config


class TestTable2Config:
    """The defaults must be the paper's Table 2 machine."""

    def test_cores_and_clock(self):
        cfg = table2_config()
        assert cfg.num_cores == 4
        assert cfg.clock_ghz == 2.0

    def test_l1(self):
        cfg = table2_config()
        assert cfg.l1_size == 64 * 1024
        assert cfg.l1_assoc == 8
        assert cfg.l1_latency == 2

    def test_l2(self):
        cfg = table2_config()
        assert cfg.l2_size == 32 * 1024 * 1024
        assert cfg.l2_assoc == 32
        assert cfg.l2_latency == 40

    def test_line_and_memory(self):
        cfg = table2_config()
        assert cfg.line_size == 64
        assert cfg.memory_latency == 200
        assert cfg.memory_size == 1 << 30

    def test_vid_bits_default_six(self):
        assert table2_config().vid_bits == 6

    def test_hierarchy_projection(self):
        h = table2_config().hierarchy_config()
        assert h.num_cores == 4
        assert h.l2_size == 32 * 1024 * 1024
        assert h.vid_bits == 6

    def test_cycles_to_seconds(self):
        cfg = table2_config()
        assert cfg.cycles_to_seconds(2_000_000_000) == pytest.approx(1.0)

    def test_small_test_config(self):
        cfg = small_test_config()
        assert cfg.l1_size < table2_config().l1_size


class TestThreadContext:
    def test_output_buffering_per_vid(self):
        ctx = ThreadContext(tid=0, core=0)
        ctx.vid = 3
        ctx.buffer_output("a")
        ctx.vid = 4
        ctx.buffer_output("b")
        assert ctx.release_output(3) == ["a"]
        assert ctx.release_output(3) == []
        assert ctx.pending_output_count() == 1

    def test_discard_counts(self):
        ctx = ThreadContext(tid=0, core=0)
        ctx.vid = 1
        ctx.buffer_output("x")
        ctx.buffer_output("y")
        assert ctx.discard_output() == 2
        assert ctx.pending_output_count() == 0


class TestSystemStats:
    def test_read_write_sets_at_line_granularity(self):
        stats = SystemStats(line_size=64)
        stats.record_load(1, 0x100, sla_sent=True)
        stats.record_load(1, 0x108, sla_sent=False)  # same line
        stats.record_store(1, 0x140)
        record = stats.record_commit(1)
        assert record.read_set_bytes == 64
        assert record.write_set_bytes == 64
        assert record.combined_set_bytes == 128
        assert record.spec_accesses == 3
        assert record.slas_sent == 1

    def test_combined_set_deduplicates(self):
        stats = SystemStats(line_size=64)
        stats.record_load(1, 0x100, sla_sent=True)
        stats.record_store(1, 0x108)  # same line as the load
        record = stats.record_commit(1)
        assert record.combined_set_bytes == 64

    def test_averages(self):
        stats = SystemStats(line_size=64)
        for vid, lines in ((1, 1), (2, 3)):
            for i in range(lines):
                stats.record_load(vid, i * 64, sla_sent=True)
            stats.record_commit(vid)
        assert stats.avg_read_set_kb == pytest.approx((64 + 192) / 2 / 1024)
        assert stats.avg_spec_accesses_per_tx == pytest.approx(2.0)

    def test_sla_fraction(self):
        stats = SystemStats()
        stats.record_load(1, 0, sla_sent=True)
        stats.record_load(1, 8, sla_sent=False)
        stats.record_load(1, 16, sla_sent=False)
        assert stats.sla_fraction_of_spec_loads == pytest.approx(1 / 3)

    def test_abort_clears_open_transactions(self):
        stats = SystemStats()
        stats.record_load(1, 0, sla_sent=False)
        stats.record_abort()
        assert stats.aborted == 1
        assert stats.record_commit(1) is None  # no open record survived

    def test_empty_stats_are_zero(self):
        stats = SystemStats()
        assert stats.avg_spec_accesses_per_tx == 0.0
        assert stats.avg_combined_set_kb == 0.0
        assert stats.sla_fraction_of_spec_loads == 0.0
        assert stats.avoided_aborts_per_tx == 0.0
