"""The repo lint: each rule on synthetic sources, suppressions, src/ clean."""

import textwrap

from repro.analysis.lint import (LINT_RULES, default_lint_root, lint_paths,
                                 lint_source)


def lint(source, rel="repro/somewhere.py"):
    findings, _ = lint_source(textwrap.dedent(source), rel)
    return findings


def rules_of(findings):
    return [f.rule for f in findings]


class TestCauseStamping:
    def test_unstamped_raise_is_rl001(self):
        findings = lint("""
            def f():
                raise MisspeculationError("boom", vid=3)
            """)
        assert rules_of(findings) == ["RL001"]

    def test_stamped_raise_is_clean(self):
        findings = lint("""
            def f():
                raise SpeculativeOverflowError(
                    "evicted", cause=AbortCause.CAPACITY_OVERFLOW)
            """)
        assert findings == []

    def test_kwargs_splat_counts_as_stamped(self):
        findings = lint("""
            def f(kw):
                raise MisspeculationError("boom", **kw)
            """)
        assert findings == []

    def test_other_exceptions_are_ignored(self):
        assert lint("""
            def f():
                raise ValueError("not a misspeculation")
            """) == []


class TestProtocolPurity:
    def test_container_import_in_protocol_is_rl002(self):
        findings = lint("from ..coherence.cache import VersionedCache\n",
                        rel="repro/coherence/protocol.py")
        assert rules_of(findings) == ["RL002"]

    def test_pure_imports_are_fine(self):
        assert lint("from .states import State\nimport enum\n",
                    rel="repro/coherence/vid.py") == []

    def test_rule_only_applies_to_pure_modules(self):
        assert lint("from ..coherence.hierarchy import MemoryHierarchy\n",
                    rel="repro/txctl/manager.py") == []


class TestSlotsDiscipline:
    def test_undeclared_self_attribute_is_rl003(self):
        findings = lint("""
            class Line:
                __slots__ = ("state", "vid")
                def __init__(self):
                    self.state = 0
                    self.stale = 1
            """)
        assert rules_of(findings) == ["RL003"]
        assert "stale" in findings[0].message

    def test_declared_attributes_are_clean(self):
        assert lint("""
            class Line:
                __slots__ = ("state", "vid")
                def __init__(self):
                    self.state = 0
                    self.vid = 0
            """) == []

    def test_classes_with_opaque_bases_are_skipped(self):
        assert lint("""
            class Line(Base):
                __slots__ = ("state",)
                def __init__(self):
                    self.whatever = 1
            """) == []

    def test_classes_without_slots_are_skipped(self):
        assert lint("""
            class Loose:
                def __init__(self):
                    self.anything = 1
            """) == []


class TestWallClockFreeKeys:
    def test_wall_clock_in_runrequest_is_rl004(self):
        findings = lint("""
            class RunRequest:
                def key(self):
                    return time.time()
            """, rel="repro/experiments/engine.py")
        assert rules_of(findings) == ["RL004"]

    def test_wall_clock_elsewhere_in_engine_is_fine(self):
        assert lint("""
            def measure():
                return time.perf_counter()
            """, rel="repro/experiments/engine.py") == []

    def test_rule_only_applies_to_engine(self):
        assert lint("""
            class RunRequest:
                def key(self):
                    return time.time()
            """, rel="repro/experiments/bench.py") == []


class TestLocalImports:
    def test_function_local_import_is_rl005(self):
        findings = lint("""
            def f():
                import os
                return os
            """)
        assert rules_of(findings) == ["RL005"]

    def test_module_level_import_is_fine(self):
        assert lint("import os\n") == []

    def test_inline_marker_with_reason_suppresses(self):
        assert lint("""
            def f():
                from .heavy import thing  # lint-ok: RL005 (breaks a cycle)
                return thing
            """) == []

    def test_marker_on_the_line_above_suppresses(self):
        assert lint("""
            def f():
                # lint-ok: RL005 (defers the heavy optional stack)
                from .heavy import thing
                return thing
            """) == []

    def test_bare_marker_without_reason_does_not_suppress(self):
        findings = lint("""
            def f():
                import os  # lint-ok: RL005
                return os
            """)
        assert rules_of(findings) == ["RL005"]

    def test_marker_for_another_rule_does_not_suppress(self):
        findings = lint("""
            def f():
                import os  # lint-ok: RL001 (wrong rule)
                return os
            """)
        assert rules_of(findings) == ["RL005"]

    def test_file_pragma_suppresses_file_wide(self):
        assert lint("""
            # lint-file-ok: RL005 (CLI dispatch imports lazily)
            def f():
                import os
                return os
            def g():
                import sys
                return sys
            """) == []


class TestHotPathAllocation:
    def test_list_literal_in_hot_function_is_rl006(self):
        findings = lint("""
            def sweep(self, base):  # hot-path
                acc = []
                return acc
            """)
        assert rules_of(findings) == ["RL006"]

    def test_object_construction_is_rl006(self):
        findings = lint("""
            def access(self, addr):  # hot-path
                view = LineView(self, addr)
                view.touch()
            """)
        assert rules_of(findings) == ["RL006"]

    def test_comprehension_and_closure_are_rl006(self):
        # The sorted() call itself sits in return position (exempt), but
        # the comprehension and the lambda it closes over are churn.
        findings = lint("""
            def scrub(self):  # hot-path
                hits = [s for s in self.slots]
                return sorted(hits, key=lambda s: s.vid)
            """)
        assert rules_of(findings) == ["RL006", "RL006"]
        assert "comprehension" in findings[0].message
        assert "closure" in findings[1].message

    def test_unmarked_function_is_not_policed(self):
        assert lint("""
            def cold(self):
                return [LineView(self, a) for a in self.addrs]
            """) == []

    def test_returned_result_object_is_exempt(self):
        assert lint("""
            def access(self, addr):  # hot-path
                self.hits += 1
                return AccessResult(addr, 1, True, self.name)
            """) == []

    def test_raise_path_is_exempt(self):
        assert lint("""
            def access(self, addr):  # hot-path
                if addr < 0:
                    raise AssertionError(f"bad address {addr:x}")
                self.hits += 1
            """) == []

    def test_marker_on_multiline_signature_is_found(self):
        findings = lint("""
            def access(self, addr,
                       vid):  # hot-path
                tmp = {}
                return tmp
            """)
        assert rules_of(findings) == ["RL006"]

    def test_lint_ok_with_reason_suppresses(self):
        assert lint("""
            def fold(self, base):  # hot-path
                # lint-ok: RL006 (epoch fold: once per epoch, not per access)
                for slot in list(self.bucket):
                    self.process(slot)
            """) == []


class TestWholeTree:
    def test_src_is_lint_clean(self):
        report = lint_paths()
        assert report.ok, "\n".join(f.render() for f in report.findings)
        assert report.coverage["files"] > 50

    def test_syntax_error_is_reported_not_raised(self):
        findings, _ = lint_source("def broken(:\n", "repro/x.py")
        assert rules_of(findings) == ["RL000"]

    def test_rule_catalog_is_documented(self):
        assert set(LINT_RULES) == {"RL001", "RL002", "RL003", "RL004",
                                   "RL005", "RL006", "RL007", "RL008"}
        assert default_lint_root().name == "repro"

class TestDeterminism:
    def test_key_id_ordering_is_rl007_anywhere(self):
        findings = lint("""
            def helper(nodes):
                return sorted(nodes, key=id)
            """)
        assert rules_of(findings) == ["RL007"]

    def test_sort_method_with_key_id_is_rl007(self):
        findings = lint("""
            def helper(nodes):
                nodes.sort(key=id)
            """)
        assert rules_of(findings) == ["RL007"]

    def test_set_iteration_in_output_function_is_rl007(self):
        findings = lint("""
            def to_json(items):
                return [x for x in {i.name for i in items}]
            """)
        assert rules_of(findings) == ["RL007"]

    def test_set_call_iterated_in_for_loop_is_rl007(self):
        findings = lint("""
            def render_report(rows):
                out = []
                for row in set(rows):
                    out.append(row)
                return out
            """)
        assert rules_of(findings) == ["RL007"]

    def test_sorted_set_in_output_function_is_clean(self):
        assert lint("""
            def to_json(items):
                return [x for x in sorted(set(items))]
            """) == []

    def test_set_iteration_outside_output_paths_is_not_policed(self):
        assert lint("""
            def accumulate(items):
                return sum(x for x in set(items))
            """) == []

    def test_stable_key_function_is_clean(self):
        assert lint("""
            def helper(nodes):
                return sorted(nodes, key=lambda n: n.name)
            """) == []

    def test_marker_with_reason_suppresses_rl007(self):
        assert lint("""
            def digest(items):
                # lint-ok: RL007 (order folds into a commutative xor)
                return [x for x in set(items)]
            """) == []


class TestArtifactWallclock:
    def test_wallclock_in_write_text_function_is_rl008(self):
        findings = lint("""
            def write_report(path, rows):
                stamp = time.time()
                path.write_text(json.dumps({"rows": rows,
                                            "when": stamp}))
            """)
        assert rules_of(findings) == ["RL008"]

    def test_wallclock_in_json_dump_function_is_rl008(self):
        findings = lint("""
            def emit(fh, rows):
                json.dump({"rows": rows,
                           "elapsed": time.perf_counter()}, fh)
            """)
        assert rules_of(findings) == ["RL008"]

    def test_wallclock_near_open_for_write_is_rl008(self):
        findings = lint("""
            def save(path, rows):
                started = time.monotonic()
                with open(path, "w") as fh:
                    fh.write(repr(rows))
            """)
        assert rules_of(findings) == ["RL008"]

    def test_open_for_read_is_not_an_artifact_writer(self):
        assert lint("""
            def load(path):
                waited = time.monotonic()
                with open(path) as fh:
                    return fh.read(), waited
            """) == []

    def test_wallclock_without_write_is_clean(self):
        assert lint("""
            def measure():
                return time.perf_counter()
            """) == []

    def test_write_without_wallclock_is_clean(self):
        assert lint("""
            def write_report(path, rows):
                path.write_text(json.dumps({"rows": rows}))
            """) == []

    def test_marker_with_reason_suppresses_rl008(self):
        assert lint("""
            def write_report(path, rows):
                wall = time.perf_counter()  # lint-ok: RL008 (printed only, never written)
                path.write_text(json.dumps({"rows": rows}))
                print(wall)
            """) == []
