"""The protocol model checker: full-space pass, coverage, counterexamples.

The mutation tests are the checker's own test: a deliberately broken
protocol (one flipped comparison — exactly the off-by-one class the
paper's windows invite) must produce a counterexample, or the checker
proves nothing.
"""

from types import SimpleNamespace

from repro.analysis.modelcheck import check_protocol, reachable
from repro.coherence import protocol
from repro.coherence.protocol import WriteOutcome
from repro.coherence.states import State


def _real_protocol_namespace():
    return SimpleNamespace(
        version_hits=protocol.version_hits,
        write_outcome=protocol.write_outcome,
        plan_new_version=protocol.plan_new_version,
        read_transition=protocol.read_transition,
        commit_transition=protocol.commit_transition,
        abort_transition=protocol.abort_transition,
        reset_transition=protocol.reset_transition,
    )


class TestFullSpace:
    def test_protocol_is_clean_over_the_full_6bit_space(self):
        report = check_protocol(vid_bits=6)
        assert report.ok, "\n".join(f.render() for f in report.findings)
        assert report.coverage["violations"] == 0

    def test_coverage_counts_match_the_closed_form(self):
        """The checker must actually have enumerated the whole space."""
        report = check_protocol(vid_bits=6)
        n = 1 << 6
        assert report.coverage["tuples_enumerated"] == len(State) * n * n
        # Reachable version tuples: S-M/S-S carry 0<=m<=h (h>=1), S-O
        # strictly m<h, S-E m=0, and the five non-speculative states
        # exactly (0,0).
        tri = sum(h + 1 for h in range(1, n))      # S-M and S-S each
        strict = sum(h for h in range(1, n))       # S-O
        expected = 2 * tri + strict + (n - 1) + 5
        assert report.coverage["version_tuples_reachable"] == expected
        # Every reachable version tuple was probed with every request VID.
        assert report.coverage["request_tuples_checked"] == expected * n

    def test_small_space_is_also_clean(self):
        assert check_protocol(vid_bits=3).ok

    def test_reachable_matches_the_documented_constraints(self):
        assert reachable(State.SM, 2, 5) and reachable(State.SM, 0, 1)
        assert not reachable(State.SM, 3, 2)
        assert reachable(State.SE, 0, 4) and not reachable(State.SE, 1, 4)
        assert reachable(State.SO, 2, 5) and not reachable(State.SO, 5, 5)
        assert reachable(State.MODIFIED, 0, 0)
        assert not reachable(State.MODIFIED, 0, 1)


class TestMutationsAreCaught:
    """Each seeded bug must yield a counterexample with the right rule."""

    def _check_mutant(self, **overrides):
        mutant = _real_protocol_namespace()
        for name, fn in overrides.items():
            setattr(mutant, name, fn)
        return check_protocol(vid_bits=4, protocol=mutant)

    def test_off_by_one_hit_window_is_caught(self):
        def bad_hits(state, m, h, a):
            if state in (State.SO, State.SS) and state.speculative:
                return m <= a <= h  # inclusive upper bound: wrong
            return protocol.version_hits(state, m, h, a)

        report = self._check_mutant(version_hits=bad_hits)
        assert not report.ok
        rules = {f.rule for f in report.findings}
        assert "MC001" in rules
        counterexample = next(f for f in report.findings
                              if f.rule == "MC001")
        assert "S" in counterexample.where  # names the exact state tuple

    def test_missed_dependence_abort_is_caught(self):
        def bad_write(state, m, h, a):
            outcome = protocol.write_outcome(state, m, h, a)
            if outcome is WriteOutcome.ABORT and state.latest_spec:
                return WriteOutcome.NEW_VERSION  # ignores a < highVID
            return outcome

        report = self._check_mutant(write_outcome=bad_write)
        assert not report.ok
        assert any(f.rule == "MC003" for f in report.findings)

    def test_eager_commit_fold_divergence_is_caught(self):
        def bad_commit(state, m, h, c):
            # Drops the modVID<=c generalisation: only the exact match
            # folds, so processing a backlog lazily diverges.
            if state.speculative and c < h and 0 < m < c:
                return state, (m, h)
            return protocol.commit_transition(state, m, h, c)

        report = self._check_mutant(commit_transition=bad_commit)
        assert not report.ok
        assert any(f.rule == "MC006" for f in report.findings)

    def test_leaky_abort_is_caught(self):
        def bad_abort(state, m, h):
            if state is State.SO:
                return state, (m, h)  # leaves speculative state behind
            return protocol.abort_transition(state, m, h)

        report = self._check_mutant(abort_transition=bad_abort)
        assert not report.ok
        assert any(f.rule == "MC007" for f in report.findings)

    def test_counterexamples_are_capped_but_counted(self):
        def always_hits(state, m, h, a):
            return True

        report = self._check_mutant(version_hits=always_hits)
        assert not report.ok
        mc001 = [f for f in report.findings if f.rule == "MC001"]
        assert len(mc001) <= 5
        assert report.coverage["violations"] > len(mc001)

class TestStructuredCounterexamples:
    """MC findings carry the exact input tuple machine-readably."""

    def _mutant_report(self):
        mutant = _real_protocol_namespace()

        def bad_hits(state, m, h, a):
            if state in (State.SO, State.SS):
                return m <= a <= h
            return protocol.version_hits(state, m, h, a)

        mutant.version_hits = bad_hits
        return check_protocol(vid_bits=4, protocol=mutant)

    def test_mc001_counterexample_is_the_input_tuple(self):
        report = self._mutant_report()
        finding = next(f for f in report.findings if f.rule == "MC001")
        doc = finding.counterexample
        assert doc is not None
        assert doc["schema"] == "hmtx-modelcheck-counterex/1"
        assert doc["rule"] == "MC001"
        # The tuple replays: the spec and the mutant disagree on it.
        state = State(doc["state"])
        m, h, a = doc["mod_vid"], doc["high_vid"], doc["request_vid"]
        assert state in (State.SO, State.SS) and a == h  # the off-by-one

    def test_counterexample_lands_in_json_only_when_present(self):
        clean = check_protocol(vid_bits=4)
        assert clean.ok
        assert all("counterexample" not in f.to_json()
                   for f in clean.findings)
        broken = self._mutant_report()
        jsons = [f.to_json() for f in broken.findings]
        assert any("counterexample" in j for j in jsons)

    def test_structure_pass_findings_carry_counterexamples(self):
        from repro.coherence.directory import DirectoryConfig, DirectoryHierarchy
        from repro.topology import TopologySpec
        from repro.analysis.modelcheck import check_topology_structure

        class BrokenHome(DirectoryHierarchy):
            def _home_llc(self, addr):
                good = super()._home_llc(addr)
                index = self.llc_slices.index(good)
                return self.llc_slices[(index + 1) % len(self.llc_slices)]

        def factory():
            return BrokenHome(DirectoryConfig(
                num_cores=8, l1_size=16 * 64, l1_assoc=2,
                topology=TopologySpec(sockets=2, cores_per_socket=4)))

        report = check_topology_structure(hierarchy_factory=factory)
        assert not report.ok
        docs = [f.counterexample for f in report.findings]
        assert all(d is not None and d["schema"]
                   == "hmtx-modelcheck-counterex/1" for d in docs)
        assert all("assertion" in d and "step" in d for d in docs)
