"""Committed counterexample artifacts replay to their recorded failure.

The survivor-replay pattern: every JSON artifact under
``tests/analysis/counterexamples/`` is a minimized schedule the explorer
once caught; replaying it through the *current* machine must still
trigger the recorded rule, so protocol regressions that resurrect an old
bug fail here with the exact schedule that exposes them.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.explore import (COUNTEREXAMPLE_SCHEMA,
                                    replay_counterexample)

ARTIFACT_DIR = Path(__file__).parent / "counterexamples"
ARTIFACTS = sorted(ARTIFACT_DIR.glob("*.json"))


def load(path):
    return json.loads(path.read_text(encoding="utf-8"))


def test_corpus_exists_and_covers_every_rule():
    assert ARTIFACTS, f"no artifacts under {ARTIFACT_DIR}"
    rules = {load(p)["rule"] for p in ARTIFACTS}
    assert rules == {"EX001", "EX002", "EX003", "EX004"}


@pytest.mark.parametrize("path", ARTIFACTS, ids=lambda p: p.stem)
def test_artifact_replays_to_recorded_failure(path):
    doc = load(path)
    assert doc["schema"] == COUNTEREXAMPLE_SCHEMA
    violated = replay_counterexample(doc)
    assert doc["rule"] in violated, (
        f"{path.name}: schedule {doc['schedule']} no longer triggers "
        f"{doc['rule']} (got {violated})")


def test_wrong_schema_is_rejected():
    with pytest.raises(ValueError):
        replay_counterexample({"schema": "bogus/1"})
