"""Mutation tests: every EX rule bites.

Each injection breaks the real machine in one specific way; the explorer
must catch it, the reported rules must stay inside the expected set, and
every finding must carry a minimized counterexample that replays to the
same failure from scratch — the committed-regression contract.
"""

import pytest

from repro.analysis.explore import (EXPECTED_INJECTION_RULES, INJECTION_SHAPES,
                                    INJECTIONS, explore_pass,
                                    replay_counterexample)

CASES = [(inject, shape) for inject in sorted(INJECTIONS)
         for shape in INJECTION_SHAPES[inject]]


@pytest.fixture(scope="module")
def reports():
    cache = {}
    for inject, shape in CASES:
        cache[(inject, shape)] = explore_pass(
            preset="small", shapes=(shape,), inject=inject)
    return cache


@pytest.mark.parametrize("inject,shape", CASES)
def test_injection_is_caught(reports, inject, shape):
    report = reports[(inject, shape)]
    rules = {f.rule for f in report.findings}
    assert rules, f"{inject} on {shape} was not caught"
    assert rules <= EXPECTED_INJECTION_RULES[inject], \
        f"{inject} tripped unexpected rules {rules}"


@pytest.mark.parametrize("inject,shape", CASES)
def test_minimized_counterexamples_replay_to_failure(reports, inject, shape):
    report = reports[(inject, shape)]
    for finding in report.findings[:3]:
        doc = finding.counterexample
        assert doc is not None
        assert doc["inject"] == inject and doc["shape"] == shape
        assert doc["rule"] in replay_counterexample(doc)


@pytest.mark.parametrize("inject", sorted(INJECTIONS))
def test_minimized_schedules_are_1_minimal(reports, inject):
    # Dropping any single event from a ddmin result must break the repro
    # (1-minimality is what delta debugging guarantees).
    shape = INJECTION_SHAPES[inject][0]
    doc = reports[(inject, shape)].findings[0].counterexample
    schedule = doc["schedule"]
    for i in range(len(schedule)):
        shorter = dict(doc, schedule=schedule[:i] + schedule[i + 1:])
        if not shorter["schedule"]:
            continue
        assert doc["rule"] not in replay_counterexample(shorter), \
            f"{inject}: schedule {schedule} not 1-minimal at index {i}"


def test_every_rule_is_killed_by_some_mutation():
    covered = set()
    for inject in INJECTIONS:
        covered |= EXPECTED_INJECTION_RULES[inject]
    assert covered == {"EX001", "EX002", "EX003", "EX004"}
