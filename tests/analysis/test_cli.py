"""The analyze CLI: pass selection, JSON schema, exit codes, --output."""

import json

import pytest

from repro.analysis.cli import main


class TestAnalyzeCli:
    def test_lint_pass_json_report(self, capsys):
        assert main(["--lint", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "hmtx-analysis-report/1"
        assert data["ok"] is True
        assert [p["name"] for p in data["passes"]] == ["lint"]
        assert data["passes"][0]["coverage"]["violations"] == 0

    def test_modelcheck_small_space(self, capsys):
        assert main(["--modelcheck", "--vid-bits", "3"]) == 0
        out = capsys.readouterr().out
        assert "[modelcheck] ok" in out
        assert "analysis: PASS" in out

    def test_racecheck_narrowed_selection(self, capsys):
        assert main(["--racecheck", "--backends", "hmtx",
                     "--workloads", "ispell", "--scale", "0.1",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        racecheck = data["passes"][0]
        assert racecheck["name"] == "racecheck"
        assert racecheck["coverage"]["traces"] == 1

    def test_output_file_written(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        assert main(["--lint", "--format", "json",
                     "--output", str(out_file)]) == 0
        on_disk = json.loads(out_file.read_text())
        on_stdout = json.loads(capsys.readouterr().out)
        assert on_disk == on_stdout

    def test_lint_failure_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n    import os\n    return os\n")
        assert main(["--lint", "--paths", str(bad)]) == 1
        assert "RL005" in capsys.readouterr().out

    def test_module_entrypoint_dispatches(self):
        import subprocess
        import sys
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", "--lint"],
            capture_output=True, text=True)
        assert proc.returncode == 0
        assert "analysis: PASS" in proc.stdout
