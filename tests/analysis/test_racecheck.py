"""The trace race detector: synthetic violation streams + real backends.

Synthetic streams pin each rule's trigger exactly; the end-to-end tests
then require every registered backend to trace clean on a real workload
— the conformance contract the CI analysis job enforces at larger scale.
"""

import pytest

from repro.analysis.racecheck import check_trace
from repro.analysis.traces import capture_trace, racecheck_backends
from repro.backends import backend_names
from repro.trace.events import TraceEvent

WORD = 0x1000


def ev(seq, kind, vid=None, addr=None, value=None):
    return TraceEvent(seq, kind, None, vid, addr, "", value)


class TestForwardingReplay:
    def test_clean_forwarding_chain_passes(self):
        report = check_trace([
            ev(1, "store", vid=1, addr=WORD, value=10),
            ev(2, "load", vid=2, addr=WORD, value=10),   # forwarded
            ev(3, "store", vid=2, addr=WORD, value=20),
            ev(4, "load", vid=3, addr=WORD, value=20),   # greatest <= 3
            ev(5, "load", vid=1, addr=WORD, value=10),   # own version
            ev(6, "commit", vid=1),
            ev(7, "commit", vid=2),
            ev(8, "commit", vid=3),
        ])
        assert report.ok
        assert report.coverage["loads_checked"] == 3

    def test_lost_forwarded_value_is_rc001(self):
        report = check_trace([
            ev(1, "store", vid=1, addr=WORD, value=10),
            ev(2, "load", vid=2, addr=WORD, value=99),   # missed the store
        ])
        assert not report.ok
        finding = report.findings[0]
        assert finding.rule == "RC001"
        assert "forwarding spec requires 10" in finding.message

    def test_aborted_value_leaking_is_rc001(self):
        report = check_trace([
            ev(1, "store", vid=0, addr=WORD, value=5),   # committed baseline
            ev(2, "store", vid=1, addr=WORD, value=10),
            ev(3, "abort"),
            ev(4, "load", vid=2, addr=WORD, value=10),   # doomed value leaked
        ])
        assert not report.ok
        assert report.findings[0].rule == "RC001"
        assert "uncommitted store by VID" not in report.findings[0].detail

    def test_unknown_baseline_is_adopted_then_checked(self):
        report = check_trace([
            ev(1, "load", vid=0, addr=WORD, value=7),    # first touch
            ev(2, "load", vid=0, addr=WORD, value=8),    # now judged
        ])
        assert not report.ok
        assert report.coverage["loads_unknown_baseline"] == 1
        assert report.coverage["loads_checked"] == 1

    def test_word_granularity_aliases_subword_addresses(self):
        report = check_trace([
            ev(1, "store", vid=1, addr=WORD, value=3),
            ev(2, "load", vid=1, addr=WORD + 4, value=3),  # same 8-byte word
        ], word_size=8)
        assert report.ok
        assert report.coverage["loads_checked"] == 1


class TestOrderingRules:
    def test_out_of_order_commit_is_rc002(self):
        report = check_trace([ev(1, "commit", vid=2)])
        assert not report.ok
        assert report.findings[0].rule == "RC002"

    def test_access_under_committed_vid_is_rc002(self):
        report = check_trace([
            ev(1, "commit", vid=1),
            ev(2, "store", vid=1, addr=WORD, value=1),
        ])
        assert not report.ok
        assert any(f.rule == "RC002" and "store" in f.message
                   for f in report.findings)

    def test_abort_blamed_on_committed_vid_is_rc003(self):
        report = check_trace([
            ev(1, "commit", vid=1),
            ev(2, "misspeculation", vid=1, addr=WORD),
            ev(3, "abort"),
        ])
        assert not report.ok
        assert report.findings[0].rule == "RC003"

    def test_misspeculation_on_live_vid_is_fine(self):
        report = check_trace([
            ev(1, "commit", vid=1),
            ev(2, "misspeculation", vid=2, addr=WORD),
            ev(3, "abort"),
        ])
        assert report.ok

    def test_vid_reset_with_live_stores_is_rc004(self):
        report = check_trace([
            ev(1, "store", vid=1, addr=WORD, value=1),
            ev(2, "vid_reset"),
        ])
        assert not report.ok
        assert report.findings[0].rule == "RC004"

    def test_vid_reset_after_commit_is_clean_and_restarts_numbering(self):
        report = check_trace([
            ev(1, "store", vid=1, addr=WORD, value=1),
            ev(2, "commit", vid=1),
            ev(3, "vid_reset"),
            ev(4, "commit", vid=1),                      # new epoch
        ])
        assert report.ok


class TestRealBackends:
    @pytest.mark.parametrize("backend", backend_names())
    def test_backend_traces_clean_on_a_real_workload(self, backend):
        tracer, result, workload = capture_trace(backend, "ispell",
                                                 scale=0.1)
        assert tracer.events, "tracer recorded nothing"
        report = check_trace(tracer.events, label=backend)
        assert report.ok, "\n".join(f.render() for f in report.findings)
        assert workload.observed_result(result.system) \
            == workload.expected_result(result.system)

    def test_racecheck_backends_merges_and_labels(self):
        report = racecheck_backends(backends=("hmtx",),
                                    workloads=("ispell",), scale=0.1)
        assert report.ok
        assert report.coverage["traces"] == 1
        assert report.coverage["backends"] == "hmtx"

    def test_contended_workload_traces_clean_under_aborts(self):
        tracer, result, workload = capture_trace("hmtx", "contended-list",
                                                 scale=0.25)
        report = check_trace(tracer.events, label="hmtx/contended-list")
        assert report.ok, "\n".join(f.render() for f in report.findings)
