"""The interleaving explorer: clean exhaustion, determinism, reduction.

The acceptance contract: ``analyze --explore --preset small`` exhausts
the reduced state space on the flat and 2-socket machines with zero
findings and a byte-identical report across repeated runs, and the
canonical quotient only merges — it never changes the verdict.
"""

import json

import pytest

from repro.analysis.cli import main as analyze_main
from repro.analysis.explore import (EXPLORE_PRESETS, SHAPES, Explorer,
                                    explore_pass)


def coverage_of(preset, **kwargs):
    report = explore_pass(preset=preset, **kwargs)
    return report, report.coverage


class TestCleanExploration:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_small_preset_is_clean_and_exhausted(self, shape):
        report, cov = coverage_of("small", shapes=(shape,))
        assert report.ok
        assert report.findings == []
        assert cov[f"{shape}_exhausted"] is True
        assert cov[f"{shape}_states"] > 1
        assert cov[f"{shape}_leaves"] >= 1
        assert cov["violations"] == 0

    @pytest.mark.parametrize("preset", sorted(EXPLORE_PRESETS))
    def test_every_preset_is_clean_on_flat(self, preset):
        report, cov = coverage_of(preset, shapes=("flat",))
        assert report.ok, [f.render() for f in report.findings]
        assert cov["flat_exhausted"] is True

    def test_unknown_preset_and_injection_are_rejected(self):
        with pytest.raises(ValueError):
            explore_pass(preset="nope")
        with pytest.raises(ValueError):
            explore_pass(inject="nope")


class TestDeterminism:
    def test_repeated_reports_are_byte_identical(self):
        render = lambda: json.dumps(  # noqa: E731
            explore_pass(preset="small").to_json(),
            indent=2, sort_keys=True)
        assert render() == render()

    def test_repeated_injected_reports_are_byte_identical(self):
        render = lambda: json.dumps(  # noqa: E731
            explore_pass(preset="small", shapes=("flat",),
                         inject="broken-fold").to_json(),
            indent=2, sort_keys=True)
        assert render() == render()


class TestReduction:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_quotient_only_merges_and_preserves_verdict(self, shape):
        scenario = EXPLORE_PRESETS["small"]
        reduced = Explorer(scenario, shape, reduce=True)
        raw = Explorer(scenario, shape, reduce=False)
        assert reduced.run() == []
        assert raw.run() == []
        assert reduced.states <= raw.states
        assert reduced.exhausted and raw.exhausted

    def test_socket_mirror_quotients_the_symmetric_preset(self):
        # ``small`` is symmetric under the A<->B line swap, so the
        # 2-socket mirror automorphism must merge strictly more than
        # VID renaming alone does on the flat machine.
        scenario = EXPLORE_PRESETS["small"]
        flat = Explorer(scenario, "flat", reduce=True)
        mirrored = Explorer(scenario, "2socket", reduce=True)
        flat.run()
        mirrored.run()
        assert mirrored.states < flat.states

    def test_state_budget_reports_non_exhaustion(self):
        explorer = Explorer(EXPLORE_PRESETS["small"], "flat", max_states=5)
        assert explorer.run() == []  # pruned, but no false findings
        assert explorer.exhausted is False

    def test_depth_budget_reports_non_exhaustion(self):
        explorer = Explorer(EXPLORE_PRESETS["small"], "flat", max_depth=2)
        explorer.run()
        assert explorer.exhausted is False


class TestCli:
    def test_analyze_explore_exits_zero_and_skips_default_passes(self, capsys):
        assert analyze_main(["--explore", "--preset", "small",
                             "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert [p["name"] for p in report["passes"]] == ["explore"]
        assert report["ok"] is True

    def test_analyze_explore_inject_exits_one(self, capsys):
        assert analyze_main(["--explore", "--inject", "stuck-commit",
                             "--shapes", "flat",
                             "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for p in report["passes"]
                 for f in p["findings"]}
        assert rules == {"EX004"}

    def test_emit_counterexamples_writes_replayable_json(self, tmp_path,
                                                         capsys):
        assert analyze_main(["--explore", "--inject", "broken-fold",
                             "--shapes", "flat",
                             "--emit-counterexamples", str(tmp_path)]) == 1
        capsys.readouterr()
        files = sorted(tmp_path.glob("*.json"))
        assert files
        doc = json.loads(files[0].read_text(encoding="utf-8"))
        assert doc["schema"] == "hmtx-explore-counterex/1"
        assert doc["schedule"]
