"""Property: VID-renaming canonicalization is a true quotient.

The explorer renames VIDs by rank (an order-isomorphism), so a run whose
VID assignment differs only by a renaming — here, a shifted ``vid_start``
— must explore the *identical* canonical state set, leaf for leaf,
violation for violation.  The property is checked both on the shipped
presets and on hypothesis-generated scenarios, and a no-reduce control
shows the quotient is doing real work (raw encodings of shifted runs
differ).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.explore import EXPLORE_PRESETS, Explorer, Scenario

_A, _B = 0x000, 0x040


def explore(scenario, shape="flat", reduce=True):
    explorer = Explorer(scenario, shape, reduce=reduce, max_states=4000)
    violations = explorer.run()
    assert explorer.exhausted
    return explorer, violations


def renamed(scenario, k):
    return Scenario(
        name=scenario.name, threads=scenario.threads, addrs=scenario.addrs,
        vid_bits=scenario.vid_bits, max_attempts=scenario.max_attempts,
        vid_start=scenario.vid_start + k)


@settings(max_examples=8, deadline=None)
@given(k=st.integers(min_value=1, max_value=4),
       preset=st.sampled_from(sorted(EXPLORE_PRESETS)))
def test_vid_start_shift_explores_identical_canonical_set(k, preset):
    base = EXPLORE_PRESETS[preset]
    a, va = explore(base)
    b, vb = explore(renamed(base, k))
    assert a.visited == b.visited
    assert a.states == b.states and a.leaves == b.leaves
    assert va == vb


_OPS = st.one_of(
    st.tuples(st.just("load"), st.sampled_from((_A, _B))),
    st.tuples(st.just("store"), st.sampled_from((_A, _B)),
              st.integers(min_value=1, max_value=3)))
_PROGRAM = st.lists(_OPS, min_size=1, max_size=2).map(tuple)


@settings(max_examples=15, deadline=None)
@given(threads=st.lists(_PROGRAM, min_size=2, max_size=2).map(tuple),
       k=st.integers(min_value=1, max_value=3))
def test_quotient_holds_on_generated_scenarios(threads, k):
    base = Scenario(name="gen", threads=threads, addrs=(_A, _B))
    a, va = explore(base)
    b, vb = explore(renamed(base, k))
    assert a.visited == b.visited
    assert [v["rule"] for v in va] == [v["rule"] for v in vb]


def test_no_reduce_control_distinguishes_shifted_runs():
    # Without the rank renaming the shifted run hashes differently —
    # the quotient above is not vacuous.
    base = EXPLORE_PRESETS["small"]
    a, _ = explore(base, reduce=False)
    b, _ = explore(renamed(base, 3), reduce=False)
    assert a.visited != b.visited


def test_2socket_mirror_membership_is_schedule_order_invariant():
    # The mirror automorphism folds role-swapped schedules together:
    # on the symmetric preset the canonical sets of the mirrored machine
    # must dedup below the flat machine's (checked exactly in
    # test_explore.py); here pin that the quotient stays exhaustive.
    explorer, violations = explore(EXPLORE_PRESETS["small"], "2socket")
    assert violations == []
    assert explorer.exhausted
