#!/usr/bin/env python3
"""A guided tour of the HMTX protocol, mechanism by mechanism.

Each stop drives the real memory system through one of the paper's
mechanisms and shows the cache states and protocol events involved:

  1. versioned memory & hit windows       (section 4.1, Figure 4)
  2. the three dependence cases           (section 4.3)
  3. lazy commit processing               (section 5.3, Figure 6)
  4. abort and rollback                   (Figure 7)
  5. non-speculative overflow & retrieval (section 5.4)
  6. VID exhaustion and reset             (section 4.6)

Run:  python examples/protocol_tour.py
"""

from repro.coherence import HierarchyConfig, MemoryHierarchy
from repro.errors import MisspeculationError
from repro.trace import ProtocolTracer, format_address_history

ADDR = 0xA000


def show(hierarchy, label):
    versions = ", ".join(
        f"{cache}:{line.state}({line.mod_vid},{line.high_vid})"
        for cache, line in hierarchy.versions_everywhere(ADDR)) or "(uncached)"
    print(f"  {label:44s} {versions}")


def stop1_versioned_memory():
    print("\n[1] Versioned memory: three versions of one address\n")
    h = MemoryHierarchy(HierarchyConfig(num_cores=2))
    h.memory.write_word(ADDR, 100)
    show(h, "initially")
    h.load(0, ADDR, 1)
    show(h, "VID 1 reads (clean line -> S-E, marked)")
    h.store(0, ADDR, 1, 111)
    show(h, "VID 1 writes (backup S-O + new S-M)")
    h.store(0, ADDR, 2, 222)
    show(h, "VID 2 writes (another version stacks)")
    for vid, expected in ((0, 100), (1, 111), (2, 222), (5, 222)):
        value = h.load(1, ADDR, vid).value
        print(f"    a VID-{vid} read sees {value}  (expected {expected})")


def stop2_dependences():
    print("\n[2] Dependence enforcement (section 4.3)\n")
    h = MemoryHierarchy(HierarchyConfig(num_cores=2))
    h.store(0, ADDR, 2, 42)
    print(f"  flow:   store@2 then load@5 forwards -> "
          f"{h.load(1, ADDR, 5).value}")
    h2 = MemoryHierarchy(HierarchyConfig(num_cores=2))
    h2.memory.write_word(ADDR, 7)
    h2.load(0, ADDR, 2)
    h2.store(1, ADDR, 5, 99)
    print(f"  anti:   load@2 then store@5 is safe; VID 2 still sees "
          f"{h2.load(0, ADDR, 2).value}")
    h3 = MemoryHierarchy(HierarchyConfig(num_cores=2))
    h3.load(0, ADDR, 5)
    try:
        h3.store(1, ADDR, 2, 1)
        print("  raw:    MISSED (bug!)")
    except MisspeculationError as err:
        print(f"  raw:    load@5 then store@2 aborts -> {err.reason}")


def stop3_lazy_commit():
    print("\n[3] Lazy commit: O(1) broadcast, per-line processing at touch\n")
    h = MemoryHierarchy(HierarchyConfig(num_cores=2))
    for i in range(4):
        h.store(0, ADDR + 64 * i, 1, i)
    latency = h.commit(1)
    print(f"  commit broadcast cost: {latency} cycles for a 4-line write set")
    raw_states = [str(line.state) for line in h.l1s[0].all_lines()]
    print(f"  raw line states right after commit: {raw_states} (still S-M!)")
    h.load(1, ADDR, 0)
    show(h, "after the next touch, the line is plain")


def stop4_abort():
    print("\n[4] Abort: doomed versions die, real data survives\n")
    h = MemoryHierarchy(HierarchyConfig(num_cores=2))
    h.memory.write_word(ADDR, 100)
    h.load(0, ADDR, 1)
    h.store(0, ADDR, 1, 111)
    show(h, "before abort")
    h.abort()
    h.load(1, ADDR, 0)
    show(h, "after abort + touch")
    print(f"    committed value preserved: {h.load(1, ADDR, 0).value}")


def stop5_overflow():
    print("\n[5] Section 5.4: the non-speculative backup may overflow\n")
    h = MemoryHierarchy(HierarchyConfig(num_cores=2, l1_size=2 * 64,
                                        l1_assoc=2, l2_size=8 * 64,
                                        l2_assoc=4))
    h.memory.write_word(ADDR, 100)
    h.load(0, ADDR, 1)
    h.store(0, ADDR, 2, 222)          # S-O(0,2) backup + S-M(2,2)
    i = 0
    while h.stats.nonspec_overflows == 0 and i < 64:
        h.store(0, 0x50000 + i * 256, 2, i)   # pressure the sets
        i += 1
    print(f"  backup evicted to memory after {i} competing stores")
    value = h.load(1, ADDR, 1).value
    print(f"  a VID-1 read still finds version 0 data: {value} "
          f"(retrievals: {h.stats.overflow_retrievals})")


def stop6_vid_reset():
    print("\n[6] VID exhaustion and reset (m = 2 bits -> 3 usable VIDs)\n")
    h = MemoryHierarchy(HierarchyConfig(num_cores=1, vid_bits=2))
    for vid in (1, 2, 3):
        h.store(0, ADDR + 64 * vid, vid, vid * 10)
        h.commit(vid)
    print("  all 3 VIDs used and committed; resetting")
    h.vid_reset()
    h.store(0, ADDR, 1, 999)          # VID 1 of the new epoch
    h.commit(1)
    print(f"  new epoch's VID 1 works: {h.load(0, ADDR, 0).value}")
    print(f"  old epoch's data intact: {h.load(0, ADDR + 64, 0).value}")


def stop7_trace():
    print("\n[7] The same story, as a protocol trace\n")
    h = MemoryHierarchy(HierarchyConfig(num_cores=2))
    tracer = ProtocolTracer.attach(h, addresses={ADDR})
    h.load(0, ADDR, 1)
    h.store(0, ADDR, 1, 1)
    h.load(1, ADDR, 2)
    h.commit(1)
    print(format_address_history(tracer.events, ADDR))
    tracer.detach()


if __name__ == "__main__":
    stop1_versioned_memory()
    stop2_dependences()
    stop3_lazy_commit()
    stop4_abort()
    stop5_overflow()
    stop6_vid_reset()
    stop7_trace()
    print("\ntour complete — every mechanism above is exercised by the "
          "test suite in tests/coherence/.")
