#!/usr/bin/env python3
"""Domain example: speculatively parallelising a log-processing pipeline.

A realistic shape for HMTX's target programs: a loop over variable-length
log records that (a) chases a pointer to find the next record, (b) parses
and aggregates each record against a shared lookup table, and (c) appends
to an output journal *in order*.  Dependences (a) and (c) prevent DOALL;
HMTX's multithreaded transactions let a PS-DSWP pipeline run the parsing
stage in parallel while speculation validates every access.

The example defines the workload against the public `Workload` API, then
compares Sequential, DOACROSS, PS-DSWP/HMTX and the SMTX baseline.

Run:  python examples/log_pipeline.py
"""

from repro.cpu.isa import Branch, Load, Store, Work
from repro.runtime import run_doacross, run_ps_dswp, run_sequential
from repro.smtx import ValidationMode, run_smtx
from repro.workloads import Lcg, Region
from repro.workloads.pipeline import PipelinedBenchmark


class LogPipelineWorkload(PipelinedBenchmark):
    """Parse one log record per iteration; journal results in order."""

    name = "log-pipeline"
    stage1_work = 250            # record framing / length decoding
    epilogue_work = 900          # ordered journal append
    branch_pct = 0.15

    def __init__(self, records: int = 48, fields_per_record: int = 12):
        super().__init__(iterations=records)
        self.fields = fields_per_record
        self.records_region = Region(0x700_0000, records * 2 * 64)
        self.severity_table = Region(0x710_0000, 16 * 64)
        self.journal = Region(0x720_0000, records * 64)

    def setup_domain(self, memory) -> None:
        rng = Lcg(0x106)
        for i in range(self.records_region.size // 8):
            memory.write_word(self.records_region.base + 8 * i, rng.next(97))
        for i in range(self.severity_table.size // 8):
            memory.write_word(self.severity_table.base + 8 * i, (i * 11) % 5)

    def _record(self, i: int) -> int:
        return self.records_region.base + i * 2 * 64

    def work_body(self, i, element):
        rng = Lcg(0x106_00 + i)
        record = self._record(i)
        severity_words = self.severity_table.size // 8
        digest = element
        for f in range(self.fields):
            token = yield Load(record + 8 * (f % 16))
            severity = yield Load(self.severity_table.base +
                                  8 * ((token + f) % severity_words))
            yield Branch(taken=(token & 1) == 0,
                         wrong_path_loads=(self.result_slot(i - 1),) if i else ())
            digest = (digest * 131 + token + severity) & 0xFFFFFFFF
            yield Work(4)
        return digest

    def stage2_epilogue(self, i):
        # Ordered journal append: must happen in record order.
        digest = yield Load(self.result_slot(i))
        yield Store(self.journal.line(i), digest)
        yield from super().stage2_epilogue(i)

    def golden(self, i):
        rng_data = Lcg(0x106)
        words = self.records_region.size // 8
        data = [rng_data.next(97) for _ in range(words)]
        severity_words = self.severity_table.size // 8
        base = i * 16
        digest = self.element_payload(i)
        for f in range(self.fields):
            token = data[base + (f % 16)]
            severity = (((token + f) % severity_words) * 11) % 5
            digest = (digest * 131 + token + severity) & 0xFFFFFFFF
        return digest

    def smtx_shared_regions(self):
        return super().smtx_shared_regions() + [
            self.records_region.span(), self.journal.span()]


def main():
    print("=== Log-processing pipeline: paradigm comparison ===\n")
    runs = {}
    baseline = None
    for label, runner in [
        ("Sequential", lambda w: run_sequential(w)),
        ("DOACROSS (4 threads)", lambda w: run_doacross(w)),
        ("PS-DSWP on HMTX (max validation)", lambda w: run_ps_dswp(w)),
        ("PS-DSWP on SMTX (minimal sets)",
         lambda w: run_smtx(w, mode=ValidationMode.MINIMAL)),
        ("PS-DSWP on SMTX (maximal sets)",
         lambda w: run_smtx(w, mode=ValidationMode.MAXIMAL)),
    ]:
        workload = LogPipelineWorkload()
        result = runner(workload)
        ok = workload.observed_result(result.system) == \
            workload.expected_result(result.system)
        runs[label] = result
        if baseline is None:
            baseline = result.cycles
        print(f"{label:36s} {result.cycles:>9,} cycles   "
              f"speedup {baseline / result.cycles:4.2f}x   "
              f"{'results match sequential' if ok else '*** WRONG RESULT ***'}")

    hmtx = runs["PS-DSWP on HMTX (max validation)"].system.stats
    print(f"\nHMTX validated {hmtx.spec_loads + hmtx.spec_stores:,} speculative"
          f" accesses across {hmtx.committed} transactions "
          f"({hmtx.avg_combined_set_kb:.1f} kB avg R/W set) "
          f"with {hmtx.aborted} aborts.")
    print("Even validating *every* access, HMTX beats the software baseline "
          "that validates almost nothing.")


if __name__ == "__main__":
    main()
