#!/usr/bin/env python3
"""Automatic speculative parallelization — the paper's closing argument.

"A compiler could achieve profitable automatic speculative parallelization
with the help of low overhead speculation validation via HMTX."  (§8)

This example feeds a hot loop to the compiler in `repro.compiler`:

1. the loop is described as statements over symbolic locations — a pointer
   chase, a table lookup with a *rare* cross-iteration write (2% of
   iterations per the profile), heavy per-element processing, and an
   in-order output reduction;
2. the compiler builds the dependence graph, speculates the 2% dependence
   away, condenses SCCs, and emits a 3-stage PS-DSWP pipeline;
3. the generated code runs on HMTX (maximal hardware validation — no
   compiler-inserted checks), on SMTX with the same maximal validation a
   compiler would need, and sequentially;
4. a second input makes the speculated dependence *manifest*: HMTX detects
   it, aborts, recovers from committed state, and the result still matches
   the interpreter.

Run:  python examples/auto_parallelize.py
"""

from repro.compiler import Loop, compile_loop, plan_pipeline
from repro.runtime import run_ps_dswp, run_sequential
from repro.smtx import ValidationMode, run_smtx


def build_loop(iterations: int = 40, manifest: bool = False) -> Loop:
    loop = Loop("dedup-scan", iterations=iterations)
    loop.scalar("cursor", init=11)        # irregular pointer chase
    loop.scalar("dedup_table", init=1)    # rarely updated shared structure
    loop.array("record")
    loop.array("aux_a")
    loop.array("aux_b")
    loop.array("digest")
    loop.scalar("journal")                # in-order output accumulator

    loop.statement(
        "advance", reads=("cursor",), writes=("cursor",),
        compute=lambda i, env: {"cursor": (env["cursor"] * 131 + 17) % 65536},
        work=20, branches=3)
    loop.statement(
        "load_record", reads=("cursor",), writes=("record", "aux_a", "aux_b"),
        compute=lambda i, env: {"record": env["cursor"] ^ (i * 259),
                                "aux_a": (env["cursor"] * 7) & 0xFFFF,
                                "aux_b": (env["cursor"] >> 3) & 0xFFFF},
        work=15, branches=1)

    def digest(i, env):
        mixed = env["record"] * 2654435761 + env["aux_a"] * 31 + env["aux_b"]
        out = {"digest": (mixed + env["dedup_table"]) & 0xFFFFFF}
        if manifest and i % 9 == 8:
            # The profile said 2%; on this input the write really happens.
            out["dedup_table"] = (env["dedup_table"] + 1) & 0xFF
        return out

    loop.statement(
        "digest", reads=("record", "aux_a", "aux_b", "dedup_table"),
        writes=("digest",), maybe_writes={"dedup_table": 0.02},
        compute=digest, work=160, branches=8)
    loop.statement(
        "journal", reads=("journal", "digest"), writes=("journal",),
        compute=lambda i, env: {
            "journal": (env["journal"] * 33 + env["digest"]) & 0xFFFFFFFF},
        ordered=True, work=60, branches=2)
    return loop


def main() -> None:
    print("=== Compiling the loop ===\n")
    loop = build_loop()
    plan = plan_pipeline(loop, speculation_threshold=0.1)
    print(plan.describe())

    print("\n=== Running the generated pipeline ===\n")
    seq = run_sequential(compile_loop(build_loop()))
    rows = [("Sequential", seq, compile_loop(build_loop()))]
    hmtx_workload = compile_loop(build_loop())
    rows.append(("Auto-parallel on HMTX", run_ps_dswp(hmtx_workload),
                 hmtx_workload))
    smtx_workload = compile_loop(build_loop())
    rows.append(("Auto-parallel on SMTX (max val.)",
                 run_smtx(smtx_workload, mode=ValidationMode.MAXIMAL),
                 smtx_workload))
    for label, result, workload in rows:
        ok = workload.observed_result(result.system) == \
            workload.expected_result(result.system)
        print(f"{label:34s} {result.cycles:>9,} cycles  "
              f"speedup {seq.cycles / result.cycles:4.2f}x  "
              f"{'correct' if ok else '*** WRONG ***'}")

    print("\n=== The speculated dependence manifests ===\n")
    workload = compile_loop(build_loop(manifest=True))
    result = run_ps_dswp(workload)
    ok = workload.observed_result(result.system) == \
        workload.expected_result(result.system)
    print(f"aborts: {result.system.stats.aborted}, "
          f"recoveries: {result.recoveries}, "
          f"degraded to serial: {result.extra['degraded_serial']}, "
          f"result {'correct' if ok else 'WRONG'}")
    print("\nHMTX validated the compiler's speculation in hardware: the rare")
    print("writes were caught, rolled back, and re-executed — no compiler-")
    print("inserted checks, no expert tuning of read/write sets.")


if __name__ == "__main__":
    main()
