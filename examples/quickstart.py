#!/usr/bin/env python3
"""Quickstart: drive the HMTX system directly through its ISA-level API.

Recreates the paper's running example (Figures 3 and 5): a linked-list
traversal where a *multithreaded transaction* spans two threads — the first
thread chases pointers and forwards each node through versioned memory; the
second does the work and group-commits.

Run:  python examples/quickstart.py
"""

from repro.core import HMTXSystem, MachineConfig
from repro.experiments import format_fig5, run_fig5

NODE_REGION = 0x10_0000
PRODUCED_NODE = 0x2000       # the shared, versioned forwarding slot
NUM_NODES = 6


def build_list(system):
    """Lay out a linked list in simulated memory: next at +0, value at +8."""
    memory = system.hierarchy.memory
    for i in range(NUM_NODES):
        node = NODE_REGION + i * 64
        nxt = node + 64 if i + 1 < NUM_NODES else 0
        memory.write_word(node, nxt)
        memory.write_word(node + 8, 10 * (i + 1))
    return NODE_REGION


def main():
    system = HMTXSystem(MachineConfig(num_cores=2))
    stage1, stage2 = 0, 1
    system.thread(stage1, core=0)
    system.thread(stage2, core=1)
    node = build_list(system)

    print("=== Speculative DSWP over multithreaded transactions ===\n")
    total = 0
    vid_queue = []               # the produceVID/consumeVID channel

    # --- Stage 1: pointer chasing.  Each iteration opens a fresh MTX,
    # stores the node into the versioned producedNode slot, and moves on
    # WITHOUT committing (beginMTX(0) just leaves the transaction).
    while node:
        vid = system.allocate_vid()
        system.begin_mtx(stage1, vid)
        system.store(stage1, PRODUCED_NODE, node)      # one speculative store
        node = system.load(stage1, node).value         # node = node->next
        system.begin_mtx(stage1, 0)
        vid_queue.append(vid)
    print(f"stage 1 opened {len(vid_queue)} transactions "
          f"(all uncommitted, all with a private version of producedNode)")

    # --- Stage 2: the work function.  It re-enters each transaction by
    # VID; the versioned memory hands it that transaction's node pointer
    # (uncommitted value forwarding), and commitMTX atomically publishes
    # everything both threads did under that VID.
    for vid in vid_queue:
        system.begin_mtx(stage2, vid)
        node_ptr = system.load(stage2, PRODUCED_NODE).value
        value = system.load(stage2, node_ptr + 8).value
        total += value
        system.store(stage2, node_ptr + 16, value * 2)  # work() output
        system.commit_mtx(stage2, vid)
    print(f"stage 2 committed them in order; sum of node values = {total}")
    assert total == sum(10 * (i + 1) for i in range(NUM_NODES))

    stats = system.stats
    print(f"\nper-transaction read/write sets (cache-line granular):")
    for tx in stats.transactions[:3]:
        print(f"  VID {tx.vid}: read {tx.read_set_bytes} B, "
              f"write {tx.write_set_bytes} B, {tx.spec_accesses} accesses")
    print(f"aborts: {stats.aborted} (speculation held)")

    print("\n=== Figure 5: cache-state walkthrough of one address ===\n")
    print(format_fig5(run_fig5()))


if __name__ == "__main__":
    main()
