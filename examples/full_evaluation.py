#!/usr/bin/env python3
"""Regenerate the paper's complete evaluation: every table and figure.

Runs the 8 benchmark models under sequential / HMTX / SMTX execution and
prints Figures 1, 2, 8, 9 and Tables 1, 3 side by side with the published
reference points.  Expect a few minutes of simulation.

Run:  python examples/full_evaluation.py [scale]
      scale (default 1.0) shrinks/grows the workloads.
"""

import sys
import time

from repro.experiments import (
    BenchmarkRunner,
    format_fig1,
    format_fig2,
    format_fig8,
    format_fig9,
    format_table1,
    format_table3,
    run_fig1,
    run_fig2,
    run_fig8,
    run_fig9,
    run_table1,
    run_table3,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    runner = BenchmarkRunner(scale=scale)
    start = time.time()

    sections = [
        ("Figure 1", lambda: format_fig1(run_fig1())),
        ("Figure 8", lambda: format_fig8(run_fig8(runner=runner))),
        ("Figure 2", lambda: format_fig2(run_fig2(runner=runner))),
        ("Table 1", lambda: format_table1(run_table1(runner=runner))),
        ("Figure 9", lambda: format_fig9(run_fig9(runner=runner))),
        ("Table 3", lambda: format_table3(run_table3(runner=runner))),
    ]
    for name, render in sections:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        print(render())
    print(f"\ncompleted in {time.time() - start:.0f}s at scale {scale}")


if __name__ == "__main__":
    main()
