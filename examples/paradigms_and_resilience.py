#!/usr/bin/env python3
"""Paradigm timing (Figure 1) plus the resilience features of section 5.

Part 1 regenerates Figure 1's comparison: DOACROSS pays inter-core latency
every iteration; DSWP pays it once; PS-DSWP replicates the parallel stage.

Part 2 demonstrates the features that make long-running transactions
survive on a real machine:

* interrupts/exceptions during speculation (section 5.2) — handler memory
  accesses carry no VID, so they neither mark lines nor abort anything;
* branch-mispredicted (squashed) loads absorbed by SLAs (section 5.1);
* an explicit ``abortMTX`` with full rollback and re-execution.

Run:  python examples/paradigms_and_resilience.py
"""

from repro.cpu import InterruptInjector
from repro.errors import MisspeculationError
from repro.experiments import format_fig1, run_fig1
from repro.core import HMTXSystem, MachineConfig
from repro.runtime import run_ps_dswp
from repro.workloads import LinkedListWorkload


def part1_paradigms():
    print("=== Part 1: Figure 1 — paradigm timing ===\n")
    print(format_fig1(run_fig1(nodes=48, work_cycles=400)))
    print()


def part2_interrupts():
    print("=== Part 2: transactions survive interrupts (section 5.2) ===\n")
    workload = LinkedListWorkload(nodes=32)
    quiet = run_ps_dswp(workload)
    workload2 = LinkedListWorkload(nodes=32)
    noisy = run_ps_dswp(workload2,
                        interrupts=InterruptInjector(period=2000,
                                                     handler_accesses=8))
    ok = workload2.observed_result(noisy.system) == \
        workload2.expected_result(noisy.system)
    injector_fired = noisy.cycles > quiet.cycles
    print(f"without interrupts: {quiet.cycles:,} cycles, "
          f"{quiet.system.stats.aborted} aborts")
    print(f"with interrupts   : {noisy.cycles:,} cycles "
          f"({'slower, as expected' if injector_fired else 'unchanged'}), "
          f"{noisy.system.stats.aborted} aborts, "
          f"result {'correct' if ok else 'WRONG'}")
    print("handler accesses carried no VID -> zero misspeculation\n")


def part3_sla():
    print("=== Part 3: squashed loads and SLAs (section 5.1) ===\n")
    from repro.runtime import run_workload
    from repro.workloads import executor_factory_for, make_benchmark

    for enabled, label in [(True, "SLA enabled "), (False, "SLA disabled")]:
        workload = make_benchmark("186.crafty")   # 5.59% mispredict rate
        result = run_workload(workload, sla_enabled=enabled,
                              executor_factory=executor_factory_for(workload))
        stats = result.system.stats
        print(f"{label}: {stats.aborted} aborts "
              f"({stats.false_aborts_triggered} false), "
              f"{stats.false_aborts_avoided} false aborts avoided, "
              f"{result.cycles:,} cycles")
    print("without SLAs, squashed wrong-path loads mark cache lines and "
          "logically-earlier\nstores abort spuriously — for 130.li (22.5 "
          "avoided aborts per TX in Table 1) the\nno-SLA system cannot even "
          "make forward progress\n")


def part4_explicit_abort():
    print("=== Part 4: abortMTX and rollback ===\n")
    system = HMTXSystem(MachineConfig(num_cores=2))
    system.thread(0, core=0)
    system.hierarchy.memory.write_word(0x5000, 777)
    vid = system.allocate_vid()
    system.begin_mtx(0, vid)
    system.store(0, 0x5000, 0)
    system.output(0, "speculative print that must never appear")
    print(f"inside the transaction, 0x5000 reads "
          f"{system.load(0, 0x5000).value}")
    try:
        system.abort_mtx(0, vid)     # control-flow misspeculation detected
    except MisspeculationError as err:
        print(f"abortMTX -> {err}")
    print(f"after rollback, 0x5000 reads "
          f"{system.load(0, 0x5000).value} and "
          f"{len(system.committed_output)} buffered outputs escaped")


if __name__ == "__main__":
    part1_paradigms()
    part2_interrupts()
    part3_sla()
    part4_explicit_abort()
